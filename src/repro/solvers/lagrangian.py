"""Dual decomposition for the per-slot offloading problem (paper §4.1).

LFSC's design folds constraints (1c)/(1d) into the objective through
Lagrange multipliers; this module applies the same idea as a *solver*: with
fixed per-SCN duals (λ₁, λ₂) the inner problem

    maximize  Σ_{(m,i)} [ g + λ₁_m·v − λ₂_m·q ]·x    s.t. (1a), (1b)

is an unconstrained-in-(1c)/(1d) maximum-weight b-matching — solvable by the
same greedy used in Alg. 4 (or exactly, for small instances).  The outer
loop runs projected subgradient ascent on the duals:

    λ₁_m ← [ λ₁_m + step·(α − Σ v̄ x*) ]₊
    λ₂_m ← [ λ₂_m + step·(Σ q̄ x* − β) ]₊

and keeps the iterate with the best penalized primal value.  The result is
a fast, LP-free oracle whose structure matches LFSC exactly — useful both
as an independent check of the LP oracle and as the "what if LFSC knew the
means" reference (its gap to LFSC is pure learning cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.lp import SlotProblem
from repro.utils.validation import check_positive, require

__all__ = ["DualSolution", "solve_dual_decomposition"]


@dataclass(frozen=True)
class DualSolution:
    """Result of the subgradient dual decomposition."""

    x: np.ndarray
    objective: float
    penalized_objective: float
    lambda_qos: np.ndarray
    lambda_resource: np.ndarray
    iterations: int

    def selected_edges(self) -> np.ndarray:
        return np.flatnonzero(self.x > 0.5)


def _inner_greedy(problem: SlotProblem, weights: np.ndarray) -> np.ndarray:
    """Max-weight b-matching under (1a)/(1b), greedy on ``weights``.

    Only edges with strictly positive adjusted weight are eligible — taking
    a negative-utility edge can never help the Lagrangian.
    """
    order = np.argsort(-weights, kind="stable")
    load = np.zeros(problem.num_scns, dtype=np.int64)
    taken = np.zeros(problem.num_tasks, dtype=bool)
    x = np.zeros(problem.num_edges)
    for e in order:
        if weights[e] <= 0.0:
            break
        m = problem.edge_scn[e]
        i = problem.edge_task[e]
        if taken[i] or load[m] >= problem.capacity:
            continue
        taken[i] = True
        load[m] += 1
        x[e] = 1.0
    return x


def _penalized_value(problem: SlotProblem, x: np.ndarray, penalty: float) -> float:
    """Primal objective minus ``penalty`` × total constraint violation."""
    reward = float(problem.g @ x)
    completed = np.bincount(problem.edge_scn, weights=problem.v * x, minlength=problem.num_scns)
    consumption = np.bincount(problem.edge_scn, weights=problem.q * x, minlength=problem.num_scns)
    viol = (
        np.maximum(problem.alpha - completed, 0.0).sum()
        + np.maximum(consumption - problem.beta, 0.0).sum()
    )
    return reward - penalty * viol


def solve_dual_decomposition(
    problem: SlotProblem,
    *,
    iterations: int = 30,
    step: float = 0.1,
    penalty: float = 2.0,
    lambda_max: float = 20.0,
    initial_lambda_qos: np.ndarray | None = None,
    initial_lambda_resource: np.ndarray | None = None,
) -> DualSolution:
    """Subgradient dual decomposition; returns the best penalized iterate.

    Parameters
    ----------
    iterations:
        Outer subgradient rounds; each costs one greedy b-matching
        (O(E log E)).
    step:
        Subgradient step size, diminishing as step/sqrt(k).
    penalty:
        Violation weight used to compare iterates (primal recovery);
        2 × the max compound reward works well.
    lambda_max:
        Projection bound for the duals.
    initial_lambda_qos, initial_lambda_resource:
        Warm-start multipliers (e.g. the previous slot's
        ``DualSolution.lambda_qos/.lambda_resource``).  Subgradient ascent
        from a warmer point typically reaches a better penalized iterate in
        fewer rounds, but the trajectory *differs* from a cold start — the
        Oracle's default cached path therefore never passes these (its
        contract is bit-identity); they are an explicit opt-in for callers
        trading exact reproducibility for convergence speed.
    """
    check_positive("iterations", iterations)
    check_positive("step", step)
    check_positive("penalty", penalty)
    require(lambda_max > 0, "lambda_max must be positive")
    E = problem.num_edges
    if E == 0:
        return DualSolution(
            x=np.empty(0),
            objective=0.0,
            penalized_objective=0.0,
            lambda_qos=np.zeros(problem.num_scns),
            lambda_resource=np.zeros(problem.num_scns),
            iterations=0,
        )
    if initial_lambda_qos is None:
        lam1 = np.zeros(problem.num_scns)
    else:
        lam1 = np.clip(np.asarray(initial_lambda_qos, dtype=float), 0.0, lambda_max)
    if initial_lambda_resource is None:
        lam2 = np.zeros(problem.num_scns)
    else:
        lam2 = np.clip(np.asarray(initial_lambda_resource, dtype=float), 0.0, lambda_max)
    best_x = np.zeros(E)
    best_value = -np.inf
    for k in range(1, iterations + 1):
        adjusted = (
            problem.g
            + lam1[problem.edge_scn] * problem.v
            - lam2[problem.edge_scn] * problem.q
        )
        x = _inner_greedy(problem, adjusted)
        value = _penalized_value(problem, x, penalty)
        if value > best_value:
            best_value = value
            best_x = x
        completed = np.bincount(
            problem.edge_scn, weights=problem.v * x, minlength=problem.num_scns
        )
        consumption = np.bincount(
            problem.edge_scn, weights=problem.q * x, minlength=problem.num_scns
        )
        step_k = step / np.sqrt(k)
        lam1 = np.clip(lam1 + step_k * (problem.alpha - completed), 0.0, lambda_max)
        lam2 = np.clip(lam2 + step_k * (consumption - problem.beta), 0.0, lambda_max)
    return DualSolution(
        x=best_x,
        objective=float(problem.g @ best_x),
        penalized_objective=best_value,
        lambda_qos=lam1,
        lambda_resource=lam2,
        iterations=iterations,
    )
