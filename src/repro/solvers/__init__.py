"""Per-slot optimization solvers used by the Oracle baseline and the tests.

- :mod:`repro.solvers.lp`  — the LP relaxation of ILP (1) (paper §3.2) via
  ``scipy.optimize.linprog`` (HiGHS), with sparse constraint assembly;
- :mod:`repro.solvers.ilp` — the exact integer program via
  ``scipy.optimize.milp``, plus a feasibility-aware two-stage variant;
- :mod:`repro.solvers.matching` — maximum-weight b-matching references used
  to validate the greedy assignment's (c+1)-approximation empirically;
- :mod:`repro.solvers.highs` — direct (wrapper-free) HiGHS solves of the
  soft-QoS slot LP, bit-identical to the ``linprog`` path;
- :mod:`repro.solvers.cache` — the content-addressed
  :class:`~repro.solvers.cache.SlotProblemCache` memoizing the Oracle's
  per-slot solver work (see DESIGN.md §8).
"""

from repro.solvers.lp import SlotProblem, max_achievable_qos, solve_lp_relaxation
from repro.solvers.ilp import solve_ilp, solve_two_stage_ilp
from repro.solvers.lagrangian import DualSolution, solve_dual_decomposition
from repro.solvers.matching import max_weight_b_matching, total_weight
from repro.solvers.cache import SlotProblemCache, problem_signature, shared_cache

__all__ = [
    "SlotProblem",
    "SlotProblemCache",
    "max_achievable_qos",
    "problem_signature",
    "shared_cache",
    "solve_lp_relaxation",
    "solve_ilp",
    "solve_two_stage_ilp",
    "DualSolution",
    "solve_dual_decomposition",
    "max_weight_b_matching",
    "total_weight",
]
