"""Direct HiGHS solves for the soft-QoS slot LP — bit-identical, lower overhead.

:func:`repro.solvers.lp.solve_lp_relaxation` goes through
``scipy.optimize.linprog``, which re-validates the inputs, rebuilds the
sparse matrix, and re-allocates an options object on every call — several
milliseconds of pure wrapper overhead per slot at paper scale, paid twice
(pre-pass + main LP).  This module drives the same vendored HiGHS build
(``scipy.optimize._highspy``) directly with an exactly mirrored model and
option set, so the solver sees byte-identical inputs and returns the same
optimal vertex bit for bit (gated by ``tests/solvers/test_highs_direct.py``).

Two structural savings on top of the wrapper bypass:

- one shared four-block CSC assembly per slot (capacity / uniqueness /
  resource / QoS rows): the pre-pass solves it with the QoS rows freed
  (upper bound +inf), which HiGHS's presolve removes deterministically —
  the resulting vertex is bit-identical to the cold three-block pre-pass;
- the per-SCN achievable-completion vector can be injected from a cache
  (it is independent of α), skipping the pre-pass LP entirely.

Each solve uses a **fresh** ``Highs`` instance: reusing one instance across
the pre-pass and the main LP (or warm-starting from a previous basis) makes
HiGHS start from a different simplex basis and land on a *different optimal
vertex* of degenerate LPs, which breaks the bit-identity contract the Oracle
cache is built on.  Basis warm-starts are therefore exposed only as the
explicit opt-out documented in DESIGN.md, never used by default.

When the private ``_highspy`` module is unavailable (foreign scipy build),
``HAVE_DIRECT_HIGHS`` is False and callers fall back to
:func:`~repro.solvers.lp.solve_lp_relaxation` — same results, cold speed.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.lp import LPSolution, SlotProblem, max_achievable_qos

try:  # pragma: no cover - exercised implicitly by every fast solve
    from scipy.optimize._highspy import _core as _h

    HAVE_DIRECT_HIGHS = True
except Exception:  # pragma: no cover - foreign scipy builds
    _h = None
    HAVE_DIRECT_HIGHS = False

__all__ = [
    "HAVE_DIRECT_HIGHS",
    "SoftQosModel",
    "assemble_soft_qos_model",
    "solve_soft_qos",
]


class SoftQosModel:
    """One slot's four constraint blocks as a single CSC matrix.

    Rows are ordered [capacity (M) | uniqueness (n) | resource (M) |
    −QoS (M)]; every edge column holds exactly four entries, already sorted
    by row, so the CSC arrays are written directly without a sort or
    duplicate pass.  The layout is byte-identical to
    ``csc(vstack([A_cap, A_uni, A_res, -A_qos]))`` over the matrices of
    :meth:`~repro.solvers.lp.SlotProblem.constraint_matrices` (test-gated).
    """

    __slots__ = (
        "num_rows",
        "num_cols",
        "indptr",
        "indices",
        "data",
        "qos_row0",
        "col_lower",
        "col_upper",
        "row_lower",
        "row_upper",
    )

    def __init__(self, problem: SlotProblem) -> None:
        E = problem.num_edges
        M = problem.num_scns
        n = problem.num_tasks
        scn = problem.edge_scn
        indices = np.empty(4 * E, dtype=np.int32)
        indices[0::4] = scn
        indices[1::4] = M + problem.edge_task
        indices[2::4] = M + n + scn
        indices[3::4] = 2 * M + n + scn
        data = np.empty(4 * E)
        data[0::4] = 1.0
        data[1::4] = 1.0
        data[2::4] = problem.q
        data[3::4] = -problem.v
        self.num_rows = 2 * M + n + M
        self.num_cols = E
        self.indptr = np.arange(0, 4 * E + 1, 4, dtype=np.int32)
        self.indices = indices
        self.data = data
        self.qos_row0 = 2 * M + n
        # Bound vectors are hoisted here so the two solves of a slot (and the
        # HiGHS binding, which copies on assignment) reuse one allocation.
        # The QoS block of ``row_upper`` is rewritten per solve (+inf for the
        # pre-pass, -qos_levels for main); everything else is constant.
        self.col_lower = np.zeros(E)
        self.col_upper = np.ones(E)
        self.row_lower = np.full(self.num_rows, -np.inf)
        upper = np.empty(self.num_rows)
        upper[:M] = float(problem.capacity)
        upper[M : M + n] = 1.0
        upper[M + n : self.qos_row0] = problem.beta
        self.row_upper = upper


def assemble_soft_qos_model(problem: SlotProblem) -> SoftQosModel:
    """Build the shared CSC model for one slot (both LPs solve it)."""
    return SoftQosModel(problem)


def _solve(model: SoftQosModel, cost: np.ndarray, qos_upper: np.ndarray | None):
    """One fresh-instance HiGHS solve mirroring ``linprog(method="highs")``.

    ``qos_upper``: upper bounds for the QoS block rows, or ``None`` to free
    them (the pre-pass).  Returns ``(optimal, x, objective)`` with ``x``
    taken raw from the solver exactly as scipy does.
    """
    lp = _h.HighsLp()
    lp.num_col_ = model.num_cols
    lp.num_row_ = model.num_rows
    lp.a_matrix_.num_col_ = model.num_cols
    lp.a_matrix_.num_row_ = model.num_rows
    lp.a_matrix_.format_ = _h.MatrixFormat.kColwise
    lp.a_matrix_.start_ = model.indptr
    lp.a_matrix_.index_ = model.indices
    lp.a_matrix_.value_ = model.data
    lp.col_cost_ = cost
    lp.col_lower_ = model.col_lower
    lp.col_upper_ = model.col_upper
    lp.row_lower_ = model.row_lower
    upper = model.row_upper
    upper[model.qos_row0 :] = _h.kHighsInf if qos_upper is None else qos_upper
    lp.row_upper_ = upper

    # The exact option set scipy's linprog(method="highs") passes through
    # (None-valued options are skipped by its wrapper); any difference here
    # can move HiGHS to another optimal vertex and break bit-identity.
    opts = _h.HighsOptions()
    opts.presolve = "on"
    opts.highs_debug_level = 0
    opts.log_to_console = False
    opts.output_flag = False
    opts.simplex_strategy = 1  # dual simplex, scipy's method="highs" choice
    highs = _h._Highs()
    highs.passOptions(opts)
    highs.passModel(lp)
    highs.run()
    optimal = highs.getModelStatus() == _h.HighsModelStatus.kOptimal
    x = np.array(highs.getSolution().col_value)
    return optimal, x, float(highs.getInfo().objective_function_value)


def solve_soft_qos(
    problem: SlotProblem, *, achievable: np.ndarray | None = None
) -> tuple[LPSolution, np.ndarray]:
    """Soft-QoS LP solve, bit-identical to ``solve_lp_relaxation(qos_mode="soft")``.

    Parameters
    ----------
    achievable:
        Pre-computed per-SCN achievable completion vector (the pre-pass LP's
        output).  It depends only on the problem content, never on α, so a
        signature cache can supply it and skip the pre-pass solve.

    Returns
    -------
    ``(solution, achievable)`` — the solution plus the achievable vector
    actually used (for the caller to memoize).
    """
    E = problem.num_edges
    if E == 0:
        empty = LPSolution(
            x=np.empty(0),
            objective=0.0,
            status="empty",
            qos_levels=np.zeros(problem.num_scns),
            feasible=True,
        )
        return empty, np.zeros(problem.num_scns)

    if not HAVE_DIRECT_HIGHS:
        if achievable is None:
            achievable = max_achievable_qos(problem)
        from repro.solvers.lp import solve_lp_relaxation

        return solve_lp_relaxation(problem, achievable=achievable), achievable

    model = assemble_soft_qos_model(problem)
    if achievable is None:
        pre_ok, pre_x, _ = _solve(model, -problem.v, None)
        if pre_ok:
            achievable = np.bincount(
                problem.edge_scn, weights=problem.v * pre_x, minlength=problem.num_scns
            )
        else:
            achievable = np.zeros(problem.num_scns)
    # Same tiny slack as the cold path: don't require the unique v-optimum.
    qos_levels = np.minimum(problem.alpha, achievable * (1.0 - 1e-9))
    ok, x, obj = _solve(model, -problem.g, -qos_levels)
    if not ok:
        sol = LPSolution(
            x=np.zeros(E),
            objective=0.0,
            status="infeasible",
            qos_levels=qos_levels,
            feasible=False,
        )
        return sol, achievable
    sol = LPSolution(
        x=np.clip(x, 0.0, 1.0),
        objective=-obj,
        status="optimal",
        qos_levels=qos_levels,
        feasible=True,
    )
    return sol, achievable
