"""Exact integer solutions of the per-slot offloading ILP (paper §3.2).

Used by the exact Oracle mode on small instances and by the test suite to
validate both the LP relaxation (upper bound) and the greedy assignment's
(c+1)-approximation (lower bound).  Built on ``scipy.optimize.milp`` (HiGHS
branch-and-bound).

Two entry points:

- :func:`solve_ilp` — the ILP with a fixed QoS right-hand side (possibly
  infeasible; reports status);
- :func:`solve_two_stage_ilp` — first maximizes total expected completion to
  find the minimum achievable QoS violation, then maximizes reward subject
  to staying at that violation level (the behaviour attributed to the
  paper's Oracle, which "makes the best task offloading policy under the
  system constraints" even when a slot cannot meet α exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.solvers.lp import SlotProblem
from repro.utils.validation import require

__all__ = ["ILPSolution", "solve_ilp", "solve_two_stage_ilp"]


@dataclass(frozen=True)
class ILPSolution:
    """An integral solution over the edge variables."""

    x: np.ndarray
    objective: float
    status: str
    feasible: bool
    #: Stage-1 best completion total (two-stage solves only) — α-independent,
    #: so callers may memoize it and pass it back via ``stage1_completion=``.
    stage1_completion: float | None = None

    def selected_edges(self) -> np.ndarray:
        """Indices of edges with x = 1."""
        return np.flatnonzero(self.x > 0.5)


def _milp(
    problem: SlotProblem,
    objective: np.ndarray,
    qos_levels: np.ndarray | None,
    extra_completion_floor: float | None = None,
) -> ILPSolution:
    E = problem.num_edges
    if E == 0:
        return ILPSolution(x=np.empty(0), objective=0.0, status="empty", feasible=True)
    A_cap, A_uni, A_qos, A_res = problem.constraint_matrices()

    rows = [A_cap, A_uni, A_res]
    uppers = [
        np.full(problem.num_scns, float(problem.capacity)),
        np.ones(problem.num_tasks),
        np.full(problem.num_scns, problem.beta),
    ]
    lowers = [np.full(r.shape[0], -np.inf) for r in rows]

    if qos_levels is not None:
        rows.append(A_qos)
        uppers.append(np.full(problem.num_scns, np.inf))
        lowers.append(np.asarray(qos_levels, dtype=float))
    if extra_completion_floor is not None:
        total_v = sparse.csr_matrix(problem.v[None, :])
        rows.append(total_v)
        uppers.append(np.array([np.inf]))
        lowers.append(np.array([extra_completion_floor]))

    A = sparse.vstack(rows, format="csr")
    constraints = optimize.LinearConstraint(
        A, np.concatenate(lowers), np.concatenate(uppers)
    )
    res = optimize.milp(
        c=-np.asarray(objective, dtype=float),
        constraints=constraints,
        integrality=np.ones(E),
        bounds=optimize.Bounds(0.0, 1.0),
    )
    if res.status != 0 or res.x is None:
        return ILPSolution(
            x=np.zeros(E), objective=0.0, status=res.message, feasible=False
        )
    x = np.rint(res.x)
    return ILPSolution(
        x=x, objective=float(objective @ x), status="optimal", feasible=True
    )


def solve_ilp(problem: SlotProblem, *, enforce_qos: bool = True) -> ILPSolution:
    """Solve ILP (1) exactly with the given α as a hard constraint.

    Returns an infeasible-status solution when no assignment meets α at
    every SCN (common when coverage is sparse or links unreliable).
    """
    qos = np.full(problem.num_scns, problem.alpha) if enforce_qos else None
    return _milp(problem, problem.g, qos)


def solve_two_stage_ilp(
    problem: SlotProblem, *, stage1_completion: float | None = None
) -> ILPSolution:
    """Reward-optimal among minimum-QoS-violation integral assignments.

    Stage 1 maximizes total expected completion Σ v̄ x under (1a)/(1b)/(1d),
    establishing the best achievable completion total V*.  Stage 2 maximizes
    Σ ḡ x with the additional floor Σ v̄ x ≥ min(M·α, V*) − ε.  When α is
    achievable the result coincides with :func:`solve_ilp`.

    ``stage1_completion`` injects a previously computed V* — it depends only
    on the problem content, not on α, so the Oracle cache can warm-start a
    repeat solve past the stage-1 MILP (the result is identical because
    stage 2 only sees V* through the completion floor).
    """
    if problem.num_edges == 0:
        return ILPSolution(x=np.empty(0), objective=0.0, status="empty", feasible=True)
    if stage1_completion is None:
        stage1 = _milp(problem, problem.v, qos_levels=None)
        require(stage1.feasible, f"stage-1 ILP unexpectedly infeasible: {stage1.status}")
        best_completion = float(problem.v @ stage1.x)
    else:
        best_completion = float(stage1_completion)
    target = min(problem.num_scns * problem.alpha, best_completion)
    stage2 = _milp(
        problem,
        problem.g,
        qos_levels=None,
        extra_completion_floor=target - 1e-6,
    )
    return ILPSolution(
        x=stage2.x,
        objective=stage2.objective,
        status=stage2.status,
        feasible=stage2.feasible,
        stage1_completion=best_completion,
    )
