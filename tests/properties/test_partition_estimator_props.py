"""Property-based tests for the context partition and estimators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays


@given(
    ctx=arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=1, max_value=4),
        ),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    parts=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=300, deadline=None)
def test_partition_assign_total_and_range(ctx, parts):
    """Every context maps to exactly one valid cube index."""
    from repro.env.partition import uniform_cell_indices

    idx = uniform_cell_indices(ctx, parts)
    assert idx.shape == (ctx.shape[0],)
    assert idx.min() >= 0
    assert idx.max() < parts ** ctx.shape[1]


@given(
    parts=st.integers(min_value=1, max_value=5),
    dims=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=100, deadline=None)
def test_partition_cells_are_consistent_with_centers(parts, dims, seed):
    """A context and its cube's center always share the cube."""
    from repro.env.partition import cell_centers, uniform_cell_indices

    rng = np.random.default_rng(seed)
    ctx = rng.random((20, dims))
    idx = uniform_cell_indices(ctx, parts)
    centers = cell_centers(parts, dims)
    idx_of_center = uniform_cell_indices(centers[idx], parts)
    np.testing.assert_array_equal(idx, idx_of_center)


@given(
    values=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=40),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    num_cubes=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=200, deadline=None)
def test_aggregate_by_cube_conserves_mass(values, num_cubes, seed):
    """sum(mean_f * count_f) == sum(values)."""
    from repro.core.estimators import aggregate_by_cube

    rng = np.random.default_rng(seed)
    cubes = rng.integers(0, num_cubes, size=len(values))
    means, counts = aggregate_by_cube(values, cubes, num_cubes)
    np.testing.assert_allclose((means * counts).sum(), values.sum(), atol=1e-8)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    batches=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=100, deadline=None)
def test_cube_statistics_match_flat_means(seed, batches):
    """Incremental per-(SCN,cube) means equal the batch-computed means."""
    from repro.core.estimators import CubeStatistics

    rng = np.random.default_rng(seed)
    M, F = 2, 3
    stats = CubeStatistics(num_scns=M, num_cubes=F)
    all_obs: list[tuple[int, int, float]] = []
    for _ in range(batches):
        k = int(rng.integers(1, 10))
        scn = rng.integers(0, M, size=k)
        cube = rng.integers(0, F, size=k)
        g = rng.random(k)
        stats.observe(scn, cube, g, g, g)
        all_obs.extend(zip(scn.tolist(), cube.tolist(), g.tolist()))
    for m in range(M):
        for f in range(F):
            vals = [g for (s, c, g) in all_obs if s == m and c == f]
            if vals:
                assert np.isclose(stats.mean_g[m, f], np.mean(vals))
                assert stats.counts[m, f] == len(vals)
            else:
                assert stats.counts[m, f] == 0


@given(
    p_sel=st.floats(min_value=0.05, max_value=1.0),
    value=st.floats(min_value=0.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_importance_weighting_unbiased(p_sel, value, seed):
    """Monte-Carlo unbiasedness of x·1(sel)/p across the parameter space."""
    from repro.core.estimators import importance_weighted

    rng = np.random.default_rng(seed)
    n = 4000
    sel = rng.random(n) < p_sel
    est = importance_weighted(np.full(n, value), sel, np.full(n, p_sel))
    # Standard error of the estimator mean: value*sqrt((1-p)/(n p)).
    se = value * np.sqrt((1 - p_sel) / (n * p_sel)) + 1e-9
    assert abs(est.mean() - value) < 6 * se + 1e-6
