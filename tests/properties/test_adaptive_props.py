"""Property-based tests: the adaptive partition is always a true partition."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st


def _refined_partition(seed: int, dims: int, n_obs: int):
    from repro.core.adaptive import AdaptivePartition

    rng = np.random.default_rng(seed)
    part = AdaptivePartition(
        dims=dims, max_leaves=200, split_base=3.0, split_rho=0.5
    )
    for _ in range(6):
        ctx = rng.random((n_obs, dims))
        ids = part.assign(ctx)
        part.observe(ids)
    return part


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    dims=st.integers(min_value=1, max_value=3),
    n_obs=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_leaves_tile_the_domain(seed, dims, n_obs):
    """After arbitrary refinement, leaf volumes sum to 1 (exact tiling)."""
    part = _refined_partition(seed, dims, n_obs)
    volumes = part._leaf_sides**dims
    np.testing.assert_allclose(volumes.sum(), 1.0, rtol=1e-9)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    dims=st.integers(min_value=1, max_value=3),
    n_obs=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_every_context_has_exactly_one_leaf(seed, dims, n_obs):
    """assign() never fails and each point is inside exactly one leaf box."""
    part = _refined_partition(seed, dims, n_obs)
    rng = np.random.default_rng(seed + 1)
    ctx = rng.random((50, dims))
    ids = part.assign(ctx)  # raises if zero boxes match
    # Count matching boxes directly.
    pts = np.minimum(ctx, 1.0 - 1e-12)
    ge = pts[:, None, :] >= part._leaf_lows[None, :, :]
    lt = pts[:, None, :] < (part._leaf_lows + part._leaf_sides[:, None])[None, :, :]
    inside = np.logical_and(ge, lt).all(axis=2)
    np.testing.assert_array_equal(inside.sum(axis=1), 1)
    assert np.isin(ids, part._leaf_ids).all()


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    dims=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_ids_unique_and_bounded(seed, dims):
    part = _refined_partition(seed, dims, 25)
    ids = part._leaf_ids
    assert len(np.unique(ids)) == len(ids)
    assert ids.max() < part.num_cubes
    assert part.num_leaves <= part.max_leaves
