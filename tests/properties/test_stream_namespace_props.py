"""Property tests for stream contract v2 (env/policy namespace split).

The tentpole claim of DESIGN.md §9: environment randomness is *provably*
independent of the policy being evaluated.  These tests establish the two
halves of that claim:

- the derivation level — env and policy namespaces can never collide, for
  any pair of names (hypothesis sweeps random names including prefix games
  like ``env("ab")`` vs ``policy("a")`` with name ``"b..."``);
- the consumption level — running a simulation under a different policy
  name, or a different α, leaves every environment stream's draw sequence
  untouched (zero draws consumed by policy-dependent code).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    ENV_SPAWN_KEY,
    POLICY_SPAWN_KEY,
    RngFactory,
    describe_streams,
    env_seed_sequence,
    policy_seed_sequence,
    stream_token,
)

_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)


@given(seed=st.integers(min_value=0, max_value=2**63 - 1), a=_names, b=_names)
@settings(max_examples=300, deadline=None)
def test_env_and_policy_namespaces_never_collide(seed, a, b):
    """No env stream equals any policy stream, for any name pair.

    The namespace tag occupies a fixed spawn-key position (right after the
    root's spawn key, before the name bytes), so even names engineered to
    alias across the boundary derive different sequences.
    """
    env = env_seed_sequence(seed, a)
    pol = policy_seed_sequence(seed, b)
    assert env.spawn_key != pol.spawn_key
    assert stream_token(env) != stream_token(pol)


@given(seed=st.integers(min_value=0, max_value=2**63 - 1), a=_names, b=_names)
@settings(max_examples=200, deadline=None)
def test_distinct_names_distinct_streams_within_namespace(seed, a, b):
    if a == b:
        return
    assert stream_token(env_seed_sequence(seed, a)) != stream_token(
        env_seed_sequence(seed, b)
    )
    assert stream_token(policy_seed_sequence(seed, a)) != stream_token(
        policy_seed_sequence(seed, b)
    )


@given(seed=st.integers(min_value=0, max_value=2**63 - 1), name=_names)
@settings(max_examples=100, deadline=None)
def test_factory_methods_match_module_functions(seed, name):
    fac = RngFactory(seed)
    assert stream_token(fac.env_sequence(name)) == stream_token(
        env_seed_sequence(seed, name)
    )
    assert stream_token(fac.policy_sequence(name)) == stream_token(
        policy_seed_sequence(seed, name)
    )


def test_namespace_tags_are_frozen():
    """The v2 tags are part of the repro contract — pinned forever."""
    assert ENV_SPAWN_KEY == 0xE27
    assert POLICY_SPAWN_KEY == 0xAC7


def test_v2_stream_golden_values():
    """First word of each derived stream at seed 0 — frozen golden values.

    Changing any of these is a repro break on the same order as changing
    the replication seed schedule; a diff here must be called out as a
    golden regeneration in the PR (DESIGN.md §9).
    """
    assert {
        name: stream_token(env_seed_sequence(0, name))[0]
        for name in ("workload", "realizations", "channel")
    } == {
        "workload": 16940598308408752402,
        "realizations": 11782203393306288066,
        "channel": 14469670992605922488,
    }
    assert stream_token(policy_seed_sequence(0, "LFSC"))[0] == 123754172627608062
    # Same name, different namespace: different stream (the tag bites).
    assert stream_token(policy_seed_sequence(0, "workload"))[0] == 11671651544441296287


def test_describe_streams_names_every_stream():
    text = describe_streams(7, ("LFSC", "Random"))
    for fragment in (
        "env.workload=0x",
        "env.realizations=0x",
        "env.channel=0x",
        "policy.LFSC=0x",
        "policy.Random=0x",
    ):
        assert fragment in text


# ---------------------------------------------------------------------------
# Consumption level: the environment draw sequence is policy-invariant.
# ---------------------------------------------------------------------------

def _run_spied(policy_name: str, alpha: float, monkeypatch):
    """Run one simulation capturing the env generators ``run()`` derives."""
    from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
    from repro.utils import rng as rng_mod

    captured: dict[str, list] = {}
    orig = rng_mod.RngFactory.env

    def spy(self, name):
        gen = orig(self, name)
        captured.setdefault(name, []).append(gen)
        return gen

    monkeypatch.setattr(rng_mod.RngFactory, "env", spy)
    cfg = ExperimentConfig(
        horizon=30, num_scns=3, k_min=4, k_max=8, seed=11, alpha=alpha,
        shared_window=False, oracle_cache=False,
    )
    sim = build_simulation(cfg)
    policy = make_policy(policy_name, cfg, sim.truth)
    result = sim.run(policy, horizon=cfg.horizon)
    return captured, result


def test_workload_stream_consumption_policy_invariant(monkeypatch):
    """Changing the policy or α consumes zero extra draws from the workload
    stream: its generator ends every run in the same bit-generator state.

    This is the consumption half of the v2 independence claim — policy code
    draws only from ``policy.*`` streams, so the environment's workload
    sequence advances identically whatever runs on top of it.  (The
    realization/channel streams draw per *assigned* task — standard bandit
    semantics — so only their derivation, not their count, is
    policy-independent.)
    """
    end_states = []
    for pname, alpha in (("LFSC", 15.0), ("Random", 15.0), ("LFSC", 13.0)):
        captured, _ = _run_spied(pname, alpha, monkeypatch)
        (workload_gen,) = captured["workload"]
        end_states.append(workload_gen.bit_generator.state)
    assert end_states[0] == end_states[1] == end_states[2]


def test_renaming_a_policy_moves_only_its_policy_stream():
    """Two policies differing only in name get different policy streams but
    identical env streams — the derivation is name-local."""
    fac_a, fac_b = RngFactory(3), RngFactory(3)
    assert stream_token(fac_a.policy_sequence("LFSC")) != stream_token(
        fac_b.policy_sequence("LFSC-renamed")
    )
    for s in ("workload", "realizations", "channel"):
        assert stream_token(fac_a.env_sequence(s)) == stream_token(
            fac_b.env_sequence(s)
        )
