"""Property-based tests for Alg. 2's capped probabilities (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

weights_strategy = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=1e-12, max_value=1e12, allow_nan=False),
)


@given(
    w=weights_strategy,
    capacity=st.integers(min_value=1, max_value=10),
    gamma=st.floats(min_value=0.001, max_value=1.0),
)
@settings(max_examples=300, deadline=None)
def test_probabilities_always_valid(w, capacity, gamma):
    """Invariants: p in (0, 1], sum(p) == min(c, K), all finite."""
    from repro.core.probability import capped_probabilities

    cp = capped_probabilities(w, capacity, gamma)
    K = len(w)
    assert np.isfinite(cp.p).all()
    assert (cp.p > 0).all()
    assert (cp.p <= 1.0 + 1e-9).all()
    np.testing.assert_allclose(cp.p.sum(), min(capacity, K), rtol=1e-6)


@given(
    w=weights_strategy,
    capacity=st.integers(min_value=1, max_value=10),
    gamma=st.floats(min_value=0.001, max_value=0.999),
)
@settings(max_examples=300, deadline=None)
def test_probability_order_follows_weight_order(w, capacity, gamma):
    """Heavier tasks never get a lower selection probability."""
    from repro.core.probability import capped_probabilities

    cp = capped_probabilities(w, capacity, gamma)
    order = np.argsort(w)
    sorted_p = cp.p[order]
    assert (np.diff(sorted_p) >= -1e-9).all()


@given(
    w=weights_strategy,
    capacity=st.integers(min_value=1, max_value=10),
    gamma=st.floats(min_value=0.001, max_value=0.999),
)
@settings(max_examples=200, deadline=None)
def test_capped_tasks_have_probability_one(w, capacity, gamma):
    from repro.core.probability import capped_probabilities

    cp = capped_probabilities(w, capacity, gamma)
    if cp.capped.any():
        np.testing.assert_allclose(cp.p[cp.capped], 1.0, atol=1e-6)


@given(
    w=weights_strategy,
    capacity=st.integers(min_value=1, max_value=10),
    gamma=st.floats(min_value=0.001, max_value=0.999),
    scale=st.floats(min_value=1e-6, max_value=1e6),
)
@settings(max_examples=200, deadline=None)
def test_scale_invariance(w, capacity, gamma, scale):
    """Multiplying all weights by a constant must not change probabilities."""
    from repro.core.probability import capped_probabilities

    a = capped_probabilities(w, capacity, gamma)
    b = capped_probabilities(w * scale, capacity, gamma)
    np.testing.assert_allclose(a.p, b.p, rtol=1e-6, atol=1e-9)
