"""Property-based tests on whole-simulation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st


def _build(seed, M, capacity, alpha_frac, k_min, k_span):
    from repro.env.contexts import TaskFeatureModel
    from repro.env.geometry import CoverageSampler
    from repro.env.network import NetworkConfig
    from repro.env.processes import PiecewiseConstantTruth
    from repro.env.simulator import Simulation
    from repro.env.workload import SyntheticWorkload

    network = NetworkConfig(
        num_scns=M,
        capacity=capacity,
        alpha=capacity * alpha_frac,
        beta=capacity * 1.35,
    )
    return Simulation(
        network=network,
        workload=SyntheticWorkload(
            features=TaskFeatureModel(),
            coverage_model=CoverageSampler(
                num_scns=M, k_min=k_min, k_max=k_min + k_span
            ),
        ),
        truth=PiecewiseConstantTruth(
            num_scns=M, dims=3, cells_per_dim=2, seed=seed
        ),
        seed=seed,
    )


sim_params = dict(
    seed=st.integers(min_value=0, max_value=10_000),
    M=st.integers(min_value=1, max_value=4),
    capacity=st.integers(min_value=1, max_value=4),
    alpha_frac=st.floats(min_value=0.0, max_value=1.0),
    k_min=st.integers(min_value=2, max_value=6),
    k_span=st.integers(min_value=0, max_value=6),
)


@given(**sim_params)
@settings(max_examples=30, deadline=None)
def test_random_policy_run_invariants(seed, M, capacity, alpha_frac, k_min, k_span):
    """Any legal environment produces structurally sound results."""
    from repro.baselines.random_policy import RandomPolicy

    sim = _build(seed, M, capacity, alpha_frac, k_min, k_span)
    res = sim.run(RandomPolicy(), 12)
    assert res.accepted.max() <= capacity
    assert (res.reward >= 0).all()
    assert (res.violation_qos >= 0).all()
    assert (res.violation_resource >= 0).all()
    # Completed tasks can never exceed accepted tasks.
    assert (res.completed <= res.accepted + 1e-9).all()
    # Consumption of n accepted tasks lies in [n*q_min, n*q_max].
    assert (res.consumption <= res.accepted * 2.0 + 1e-9).all()
    assert (res.consumption >= res.accepted * 1.0 - 1e-9).all()


@given(**sim_params)
@settings(max_examples=15, deadline=None)
def test_lfsc_run_invariants(seed, M, capacity, alpha_frac, k_min, k_span):
    """LFSC stays structurally sound across the environment space."""
    from repro.core.config import LFSCConfig
    from repro.core.lfsc import LFSCPolicy

    sim = _build(seed, M, capacity, alpha_frac, k_min, k_span)
    policy = LFSCPolicy(
        LFSCConfig.from_theorem(k_min + k_span, capacity, 12, parts=2)
    )
    res = sim.run(policy, 12)
    assert res.accepted.max() <= capacity
    assert np.isfinite(policy.log_w).all()
    assert (policy.multipliers.qos >= 0).all()
    assert (policy.multipliers.resource >= 0).all()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    horizon=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=20, deadline=None)
def test_reward_matches_feedback_identity(seed, horizon):
    """Recorded per-slot reward equals Σ u·v/q over the assignment.

    Verified indirectly: cumulative reward is reproducible and finite, and
    per-SCN reward decomposition sums to the total.
    """
    from repro.baselines.random_policy import RandomPolicy

    sim = _build(seed, 3, 2, 0.5, 4, 3)
    res = sim.run(RandomPolicy(), horizon)
    assert np.isfinite(res.reward).all()
    # g = u*v/q <= 1*1/1 = 1 per task, so per-slot reward <= accepted tasks.
    assert (res.reward <= res.accepted.sum(axis=1) + 1e-9).all()
