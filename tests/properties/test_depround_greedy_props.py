"""Property-based tests for DepRound and the greedy assignment."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays


@given(
    p=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=30),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=300, deadline=None)
def test_depround_cardinality(p, seed):
    """|selected| is always floor or ceil of sum(p)."""
    from repro.core.depround import depround

    rng = np.random.default_rng(seed)
    mask = depround(p, rng)
    total = p.sum()
    assert mask.sum() in {int(np.floor(total + 1e-9)), int(np.ceil(total - 1e-9))}


@given(
    p=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=30),
        elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=200, deadline=None)
def test_depround_respects_deterministic_entries(p, seed):
    """Entries at exactly 0 or 1 are never flipped."""
    from repro.core.depround import depround

    mask = depround(p, np.random.default_rng(seed))
    assert mask[p >= 1.0].all()
    assert not mask[p <= 0.0].any()


def _random_graph(data_rng, M, n, deg):
    coverage = [
        np.sort(data_rng.choice(n, size=min(deg, n), replace=False))
        for _ in range(M)
    ]
    weights = [data_rng.random(len(c)) for c in coverage]
    return coverage, weights


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    M=st.integers(min_value=1, max_value=5),
    n=st.integers(min_value=1, max_value=20),
    deg=st.integers(min_value=1, max_value=10),
    capacity=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=300, deadline=None)
def test_greedy_structural_invariants(seed, M, n, deg, capacity):
    """Greedy output always satisfies (1a), (1b), and coverage membership."""
    from repro.core.greedy import greedy_select

    rng = np.random.default_rng(seed)
    coverage, weights = _random_graph(rng, M, n, deg)
    a = greedy_select(coverage, weights, capacity, n)
    if len(a) == 0:
        return
    assert np.bincount(a.scn, minlength=M).max() <= capacity
    assert np.unique(a.task).size == a.task.size
    for m, i in zip(a.scn, a.task):
        assert i in coverage[m]


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    M=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=12),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_greedy_within_approximation_bound(seed, M, n, capacity):
    """weight(greedy) >= weight(optimal) / (c+1) — the paper's Lemma 2."""
    from repro.core.greedy import greedy_select
    from repro.solvers.matching import max_weight_b_matching, total_weight

    rng = np.random.default_rng(seed)
    coverage, weights = _random_graph(rng, M, n, min(6, n))
    greedy = greedy_select(coverage, weights, capacity, n)
    opt_scn, opt_task = max_weight_b_matching(coverage, weights, capacity, n)
    g_val = total_weight(greedy.scn, greedy.task, coverage, weights)
    o_val = total_weight(opt_scn, opt_task, coverage, weights)
    assert g_val >= o_val / (capacity + 1) - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    M=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=4, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_greedy_maximal(seed, M, n):
    """No discarded edge could still be added (maximality of the matching)."""
    from repro.core.greedy import greedy_select

    rng = np.random.default_rng(seed)
    coverage, weights = _random_graph(rng, M, n, 4)
    capacity = 2
    a = greedy_select(coverage, weights, capacity, n)
    load = np.bincount(a.scn, minlength=M)
    taken = np.zeros(n, dtype=bool)
    taken[a.task] = True
    for m, cov in enumerate(coverage):
        for i in cov:
            # An addable edge must not exist.
            assert taken[i] or load[m] >= capacity
