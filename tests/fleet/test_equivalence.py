"""The fleet's headline guarantee: sharded ≡ unsharded, bit for bit.

Per-tile trajectories are pure functions of ``(FleetConfig, tile)`` — the
shard count, execution mode, and slot-streaming window only change *who*
steps a tile and in what batches, never what it computes.  These tests pin
that across shard counts {1, 2, 4}, both slot engines, windowed and
per-slot streaming, serial and process modes, and the sampler fast path.
"""

import numpy as np
import pytest

from repro.fleet import FleetConfig, fleet_series_equal, run_fleet
from repro.utils.parallel import process_pool_supported

needs_procs = pytest.mark.skipif(
    not process_pool_supported(), reason="no process pools on host"
)


def _cfg(**overrides):
    base = dict(
        tiles_x=2,
        tiles_y=2,
        scns_per_tile=3,
        wds_per_tile=12,
        horizon=16,
        exchange_every=4,
        seed=0,
        truth_seed=7,
    )
    base.update(overrides)
    return FleetConfig(**base)


class TestShardInvariance:
    @pytest.mark.parametrize("engine", ["batched", "reference"])
    @pytest.mark.parametrize("window", [None, 8, 0])
    def test_shard_counts_bit_identical(self, engine, window):
        cfg = _cfg(engine=engine, window=window)
        ref = run_fleet(cfg, shards=1, mode="serial")
        for shards in (2, 4):
            res = run_fleet(cfg, shards=shards, mode="serial")
            assert res.shards == shards
            assert fleet_series_equal(res, ref), (
                f"engine={engine} window={window} shards={shards}"
            )

    def test_mobility_run_actually_migrates(self):
        res = run_fleet(_cfg(), shards=2, mode="serial")
        assert res.migrants > 0, "exchange untested: no WD crossed a border"
        assert res.rounds == 4

    @needs_procs
    def test_process_mode_equals_serial(self):
        cfg = _cfg()
        serial = run_fleet(cfg, shards=2, mode="serial")
        procs = run_fleet(cfg, shards=2, mode="process")
        assert procs.mode == "process"
        assert fleet_series_equal(procs, serial)
        assert procs.migrants == serial.migrants

    @needs_procs
    def test_process_mode_uneven_partition(self):
        cfg = _cfg(tiles_x=3, tiles_y=1)
        ref = run_fleet(cfg, shards=1, mode="serial")
        res = run_fleet(cfg, shards=2, mode="process")
        assert [len(g) for g in res.groups] == [2, 1]
        assert fleet_series_equal(res, ref)

    def test_engines_agree_on_trajectory(self):
        """The two slot engines are themselves equivalent per tile."""
        a = run_fleet(_cfg(engine="batched", window=0), shards=1, mode="serial")
        b = run_fleet(_cfg(engine="reference"), shards=1, mode="serial")
        assert fleet_series_equal(a, b)


class TestIndependenceFastPath:
    def test_sampler_takes_single_round(self):
        cfg = _cfg(coverage="sampler")
        res = run_fleet(cfg, shards=2, mode="serial")
        assert res.independent
        assert res.rounds == 1 and res.migrants == 0

    def test_sampler_still_shard_invariant(self):
        cfg = _cfg(coverage="sampler")
        ref = run_fleet(cfg, shards=1, mode="serial")
        for shards in (2, 4):
            assert fleet_series_equal(run_fleet(cfg, shards=shards, mode="serial"), ref)

    def test_mobility_is_not_independent(self):
        res = run_fleet(_cfg(), shards=1, mode="serial")
        assert not res.independent


class TestResultSurface:
    def test_result_shape_and_counters(self):
        cfg = _cfg()
        res = run_fleet(cfg, shards=2, mode="serial")
        assert len(res.tile_series) == cfg.num_tiles
        for series in res.tile_series:
            assert len(series["reward"]) == cfg.horizon
            assert series["assigned"].dtype == np.int64
        assert res.decisions == sum(int(s["assigned"].sum()) for s in res.tile_series)
        assert res.decisions_per_min > 0
        assert res.total_reward == pytest.approx(
            sum(float(s["reward"].sum()) for s in res.tile_series)
        )

    def test_latency_rows_one_per_shard(self):
        cfg = _cfg()
        res = run_fleet(cfg, shards=2, mode="serial")
        rows = res.latency_rows()
        assert [r["shard"] for r in rows] == [0, 1]
        for row in rows:
            assert row["count"] == 2 * cfg.horizon  # two tiles per shard
            assert 0.0 <= row["p50_ms"] <= row["p99_ms"]

    def test_seed_changes_trajectory(self):
        a = run_fleet(_cfg(), shards=1, mode="serial")
        b = run_fleet(_cfg(seed=1), shards=1, mode="serial")
        assert not fleet_series_equal(a, b)

    def test_mbs_tier_records_series(self):
        res = run_fleet(_cfg(mbs_capacity=4), shards=1, mode="serial")
        assert all("mbs_reward" in s for s in res.tile_series)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            run_fleet(_cfg(), shards=2, mode="carrier-pigeon")


class TestApiFacade:
    def test_run_fleet_facade_with_verify(self):
        from repro import api

        res = api.run_fleet(
            tiles_x=2,
            tiles_y=1,
            scns_per_tile=3,
            wds_per_tile=12,
            horizon=8,
            exchange_every=4,
            shards=2,
            mode="serial",
            verify=True,
        )
        assert res.shards == 2

    def test_run_fleet_facade_overrides_config(self):
        from repro import api

        cfg = _cfg()
        res = api.run_fleet(cfg, horizon=8, shards=1, mode="serial")
        assert res.config.horizon == 8
