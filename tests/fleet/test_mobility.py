"""Border mobility: determinism of draws, reflection vs open borders, exchange."""

import numpy as np
import pytest

from repro.fleet.mobility import BorderMobility


def _model(**kw):
    base = dict(num_scns=4, num_wds=16, tile_km=2.0, radius_km=0.8, speed_km=0.3)
    base.update(kw)
    return BorderMobility(**base)


class TestDeterminism:
    def test_same_stream_same_trajectory(self):
        a, b = _model(), _model()
        ra, rb = np.random.default_rng(3), np.random.default_rng(3)
        for _ in range(20):
            na, cov_a = a.sample_slot(ra)
            nb, cov_b = b.sample_slot(rb)
            assert na == nb
            for x, y in zip(cov_a, cov_b):
                np.testing.assert_array_equal(x, y)
        np.testing.assert_array_equal(a.wd_positions, b.wd_positions)

    def test_fixed_count_draws_per_slot(self):
        """A slot consumes draws by population size only — the invariant the
        sharded equivalence proof rests on (stream layout cannot depend on
        who reflected or wandered out)."""
        m = _model(open_right=True)
        rng = np.random.default_rng(7)
        m.sample_slot(rng)  # init: one (n, 2) uniform
        before = rng.bit_generator.state
        m.sample_slot(rng)
        after = rng.bit_generator.state

        shadow = np.random.default_rng(1)
        shadow.bit_generator.state = before
        n = 16
        shadow.uniform(0.0, 2.0 * np.pi, size=n)
        shadow.uniform(0.0, 0.3, size=n)
        assert shadow.bit_generator.state == after

    def test_ids_are_globally_unique_offsets(self):
        m = _model(id_base=32)
        m.sample_slot(np.random.default_rng(0))
        np.testing.assert_array_equal(m.wd_ids, np.arange(32, 48))


class TestBorders:
    def test_closed_borders_reflect_inside(self):
        m = _model()  # all borders closed
        rng = np.random.default_rng(11)
        for _ in range(200):
            m.sample_slot(rng)
        xy = m.wd_positions
        assert (xy >= 0.0).all() and (xy <= m.tile_km).all()

    def test_open_border_lets_wds_exit(self):
        m = _model(open_left=True, open_right=True, open_down=True, open_up=True)
        rng = np.random.default_rng(11)
        exited = False
        for _ in range(200):
            m.sample_slot(rng)
            xy = m.wd_positions
            if (xy < 0.0).any() or (xy > m.tile_km).any():
                exited = True
                break
        assert exited, "no WD ever crossed an open border in 200 slots"

    def test_speed_must_fit_tile(self):
        with pytest.raises(ValueError, match="speed_km"):
            _model(speed_km=3.0)


class TestExchange:
    def _run_until_migrants(self, m, rng, max_slots=500):
        for _ in range(max_slots):
            m.sample_slot(rng)
            x, y = m.wd_positions[:, 0], m.wd_positions[:, 1]
            if ((x < 0) | (x > m.tile_km) | (y < 0) | (y > m.tile_km)).any():
                return m.collect_migrants()
        pytest.fail("no migrants produced")

    def test_collect_removes_and_localizes(self):
        m = _model(open_left=True, open_right=True, open_down=True, open_up=True)
        rng = np.random.default_rng(5)
        out = self._run_until_migrants(m, rng)
        assert out
        total_out = 0
        for dx, dy, ids, xy in out:
            assert (dx, dy) != (0, 0) and abs(dx) <= 1 and abs(dy) <= 1
            total_out += len(ids)
            # Positions are already in the destination tile's frame and,
            # since a step is < tile_km, inside it along the crossed axis.
            if dx:
                assert ((xy[:, 0] >= 0) & (xy[:, 0] <= m.tile_km)).all()
            if dy:
                assert ((xy[:, 1] >= 0) & (xy[:, 1] <= m.tile_km)).all()
        assert len(m.wd_ids) == 16 - total_out
        # Leavers are gone from the home population.
        for _, _, ids, _ in out:
            assert not np.isin(ids, m.wd_ids).any()

    def test_collect_receive_round_trip(self):
        m = _model(open_left=True, open_right=True, open_down=True, open_up=True)
        rng = np.random.default_rng(5)
        out = self._run_until_migrants(m, rng)
        ids = np.concatenate([e[2] for e in out])
        xy = np.concatenate([e[3] for e in out])
        order = np.argsort(ids, kind="stable")
        m.receive_migrants(ids[order], xy[order])
        assert len(m.wd_ids) == 16
        np.testing.assert_array_equal(np.sort(m.wd_ids), np.arange(16))

    def test_collect_without_leavers_is_empty(self):
        m = _model()
        m.sample_slot(np.random.default_rng(0))
        assert m.collect_migrants() == []

    def test_receive_validates_shapes(self):
        m = _model()
        m.sample_slot(np.random.default_rng(0))
        with pytest.raises(ValueError, match="disagree"):
            m.receive_migrants(np.array([99]), np.zeros((2, 2)))

    def test_receive_before_first_slot_rejected(self):
        m = _model()
        with pytest.raises(RuntimeError, match="first slot"):
            m.receive_migrants(np.array([99]), np.zeros((1, 2)))

    def test_reset_forgets_population(self):
        m = _model()
        m.sample_slot(np.random.default_rng(0))
        m.reset()
        assert m.wd_ids is None and m.wd_positions is None
