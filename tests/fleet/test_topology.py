"""Fleet topology: grid geometry, tile partitioning, per-tile configs."""

import pytest

from repro.fleet import FleetConfig, partition_tiles
from repro.utils.rng import fleet_seed


class TestPartitionTiles:
    def test_balanced_contiguous_groups(self):
        groups = partition_tiles(7, 3)
        assert groups == ((0, 1, 2), (3, 4), (5, 6))

    def test_even_split(self):
        assert partition_tiles(8, 4) == ((0, 1), (2, 3), (4, 5), (6, 7))

    def test_shards_clamped_to_tiles(self):
        groups = partition_tiles(2, 8)
        assert groups == ((0,), (1,))

    def test_single_shard_gets_everything(self):
        assert partition_tiles(5, 1) == ((0, 1, 2, 3, 4),)

    def test_covers_every_tile_exactly_once(self):
        for tiles, shards in [(13, 4), (4, 4), (100, 7)]:
            groups = partition_tiles(tiles, shards)
            flat = [t for g in groups for t in g]
            assert flat == list(range(tiles))
            sizes = [len(g) for g in groups]
            assert max(sizes) - min(sizes) <= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_tiles(0, 1)
        with pytest.raises(ValueError):
            partition_tiles(4, 0)


class TestGridGeometry:
    def test_coords_index_round_trip(self):
        cfg = FleetConfig(tiles_x=3, tiles_y=2)
        for tile in range(cfg.num_tiles):
            tx, ty = cfg.tile_coords(tile)
            assert cfg.tile_index(tx, ty) == tile

    def test_neighbor_row_major(self):
        cfg = FleetConfig(tiles_x=3, tiles_y=2)
        assert cfg.neighbor(0, +1, 0) == 1
        assert cfg.neighbor(0, 0, +1) == 3
        assert cfg.neighbor(4, -1, -1) == 0
        # Metro edges have no neighbour.
        assert cfg.neighbor(0, -1, 0) is None
        assert cfg.neighbor(0, 0, -1) is None
        assert cfg.neighbor(5, +1, 0) is None

    def test_open_edges(self):
        cfg = FleetConfig(tiles_x=3, tiles_y=2)
        # Corner tile 0: only right and up are interior borders.
        assert cfg.open_edges(0) == (False, True, False, True)
        # Middle-of-row tile 4: left, right, down open; top is the edge.
        assert cfg.open_edges(4) == (True, True, True, False)

    def test_coords_out_of_range(self):
        cfg = FleetConfig(tiles_x=2, tiles_y=2)
        with pytest.raises(ValueError):
            cfg.tile_coords(4)
        with pytest.raises(ValueError):
            cfg.tile_index(2, 0)

    def test_counts(self):
        cfg = FleetConfig(tiles_x=4, tiles_y=3, scns_per_tile=8)
        assert cfg.num_tiles == 12
        assert cfg.num_scns == 96


class TestConfigValidation:
    def test_exchange_speed_constraint(self):
        with pytest.raises(ValueError, match="exchange_every"):
            FleetConfig(exchange_every=100, speed_km=0.15, tile_km=4.0)

    def test_defaults_are_self_consistent(self):
        cfg = FleetConfig()
        assert cfg.exchange_every * cfg.speed_km < cfg.tile_km

    def test_bad_coverage(self):
        with pytest.raises(ValueError, match="coverage"):
            FleetConfig(coverage="teleport")

    def test_bad_engine(self):
        with pytest.raises(ValueError, match="engine"):
            FleetConfig(engine="warp")

    def test_negative_window(self):
        with pytest.raises(ValueError, match="window"):
            FleetConfig(window=-1)

    def test_sampler_skips_mobility_constraint(self):
        cfg = FleetConfig(coverage="sampler", exchange_every=100)
        assert cfg.independent

    def test_with_overrides_revalidates(self):
        cfg = FleetConfig()
        with pytest.raises(ValueError):
            cfg.with_overrides(exchange_every=1000)


class TestTileConfig:
    def test_mobility_coverage_bounds(self):
        cfg = FleetConfig(wds_per_tile=50)
        tc = cfg.tile_config(0)
        # Theorem 1's schedule uses a fixed bound, never realized migration.
        assert tc.k_min == 1 and tc.k_max == 50

    def test_sampler_coverage_bounds(self):
        cfg = FleetConfig(coverage="sampler", k_min=5, k_max=12)
        tc = cfg.tile_config(0)
        assert tc.k_min == 5 and tc.k_max == 12

    def test_per_tile_truth_seeds_differ(self):
        cfg = FleetConfig()
        seeds = {cfg.tile_config(t).truth_seed for t in range(cfg.num_tiles)}
        assert len(seeds) == cfg.num_tiles
        assert seeds == {fleet_seed(cfg.truth_seed, t) for t in range(cfg.num_tiles)}

    def test_cross_run_caches_stood_down(self):
        tc = FleetConfig().tile_config(0)
        assert tc.oracle_cache is False
        assert tc.shared_window is False

    def test_engine_override_propagates(self):
        tc = FleetConfig(engine="reference").tile_config(0)
        assert tc.lfsc.engine == "reference"

    def test_pure_function_of_config_and_tile(self):
        cfg = FleetConfig()
        assert cfg.tile_config(3) == cfg.tile_config(3)
