"""Baseline policies feed the span histograms and stay bit-identical.

PR 4 instrumented the baselines' inner phases (Oracle problem/solve/round,
vUCB index/greedy, FML score/greedy, the extras) with observability spans.
Spans are purely observational — they must never touch an RNG — so each
baseline's trajectory has to be byte-identical with a context installed,
and the registry must afterwards hold one histogram per instrumented phase
with one observation per slot.
"""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.obs import observe
from repro.obs.metrics import MetricsRegistry
from repro.solvers.cache import reset_shared_cache

HORIZON = 12

# policy name -> spans its select() must record every slot
EXPECTED_SPANS = {
    "Oracle": ("oracle.problem", "oracle.solve", "oracle.round"),
    "vUCB": ("vucb.index", "vucb.greedy"),
    "FML": ("fml.score", "fml.greedy"),
    "eps-greedy": ("eps_greedy.score", "eps_greedy.greedy"),
    "thompson": ("thompson.score", "thompson.greedy"),
}


def _run(name, registry=None):
    # The Oracle's solver cache is shared process-wide; a warm entry left by
    # another test would turn a solve into a cache hit (span.oracle.cache_hit
    # instead of span.oracle.solve/round), so start every run cold.
    reset_shared_cache()
    cfg = ExperimentConfig.tiny(horizon=HORIZON)
    sim = build_simulation(cfg)
    policy = make_policy(name, cfg, sim.truth)
    if registry is None:
        return sim.run(policy, HORIZON)
    with observe(registry=registry):
        return sim.run(policy, HORIZON)


@pytest.mark.parametrize("name", sorted(EXPECTED_SPANS))
def test_spans_recorded_per_slot(name):
    registry = MetricsRegistry()
    _run(name, registry)
    snap = registry.snapshot()
    for span_name in EXPECTED_SPANS[name]:
        hist = snap["histograms"].get(f"span.{span_name}")
        assert hist is not None, f"span.{span_name} missing from registry"
        assert hist["total"] == HORIZON


@pytest.mark.parametrize("name", sorted(EXPECTED_SPANS))
def test_observed_run_bit_identical(name):
    bare = _run(name)
    observed = _run(name, MetricsRegistry())
    np.testing.assert_array_equal(bare.reward, observed.reward)
    np.testing.assert_array_equal(bare.violation_qos, observed.violation_qos)
    np.testing.assert_array_equal(bare.completed, observed.completed)
