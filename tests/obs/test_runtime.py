"""Runtime activation: fast path, scoped observe, env init, failure context."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import ObsContext, active, last_trace_record, observe, span
from repro.obs.trace import read_trace


@pytest.fixture(autouse=True)
def _clean_context():
    """Each test starts and ends with no installed context."""
    runtime.uninstall()
    yield
    runtime.uninstall()


class TestFastPath:
    def test_disabled_by_default(self):
        assert active() is None

    def test_span_is_shared_noop_when_disabled(self):
        s1, s2 = span("a"), span("b")
        assert s1 is s2  # the singleton null span: zero allocation per call
        with s1:
            pass


class TestObserve:
    def test_installs_and_restores(self):
        with observe() as ctx:
            assert active() is ctx
        assert active() is None

    def test_nested_observe_restores_outer(self):
        with observe() as outer:
            with observe() as inner:
                assert active() is inner
            assert active() is outer

    def test_spans_feed_registry_histograms(self):
        reg = MetricsRegistry()
        with observe(registry=reg):
            with span("unit.test"):
                pass
        snap = reg.snapshot()
        assert snap["histograms"]["span.unit.test"]["total"] == 1

    def test_trace_written_and_closed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with observe(trace_path=path) as ctx:
            ctx.begin_slot(0)
            ctx.end_slot(_fields(t=0))
        assert [r["t"] for r in read_trace(path)] == [0]

    def test_sampling_respected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with observe(trace_path=path, sample_every=2) as ctx:
            for t in range(4):
                ctx.begin_slot(t)
                ctx.end_slot(_fields(t=t))
        assert [r["t"] for r in read_trace(path)] == [0, 2]


class TestSlotProtocol:
    def test_begin_slot_clears_accumulators(self):
        ctx = ObsContext(registry=MetricsRegistry())
        ctx.begin_slot(0)
        ctx.add_span("x", 1.0)
        ctx.set_slot_field("edges", 9)
        ctx.begin_slot(1)
        record = ctx.end_slot(_fields(t=1))
        assert record["spans"] == {}
        assert "edges" not in record

    def test_slot_fields_and_spans_merged_into_record(self):
        ctx = ObsContext(registry=MetricsRegistry())
        ctx.begin_slot(0)
        ctx.add_span("sel", 0.25)
        ctx.add_span("sel", 0.25)  # same span twice in a slot: accumulates
        ctx.set_slot_field("edges", 12)
        record = ctx.end_slot(_fields(t=0))
        assert record["spans"] == {"sel": 0.5}
        assert record["edges"] == 12

    def test_last_record_survives_observe_exit(self):
        with observe() as ctx:
            ctx.begin_slot(3)
            ctx.end_slot(_fields(t=3))
        assert active() is None
        assert last_trace_record()["t"] == 3


class TestEnvInit:
    def test_env_var_traces_in_subprocess(self, tmp_path):
        """REPRO_TRACE_DIR makes a fresh process trace to <dir>/trace-<pid>.jsonl."""
        code = (
            "from repro.obs import runtime\n"
            "ctx = runtime.active()\n"
            "assert ctx is not None and ctx.tracer is not None\n"
            "ctx.begin_slot(0)\n"
            "ctx.end_slot({'t': 0, 'policy': 'P', 'assigned': 0,\n"
            "              'per_scn_assigned': [], 'reward': 0.0,\n"
            "              'expected_reward': None, 'violation_qos': 0.0,\n"
            "              'violation_resource': 0.0, 'multipliers_qos': None,\n"
            "              'multipliers_resource': None})\n"
            "runtime.uninstall()\n"
            "print(ctx.tracer.path)\n"
        )
        env = dict(os.environ, REPRO_TRACE_DIR=str(tmp_path), REPRO_TRACE_SAMPLE="1")
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        path = Path(out.stdout.strip())
        assert path.parent == tmp_path
        assert path.name.startswith("trace-") and path.suffix == ".jsonl"
        assert len(read_trace(path)) == 1


def _fields(t: int) -> dict:
    return {
        "t": t,
        "policy": "LFSC",
        "assigned": 0,
        "per_scn_assigned": [],
        "reward": 0.0,
        "expected_reward": None,
        "violation_qos": 0.0,
        "violation_resource": 0.0,
        "multipliers_qos": None,
        "multipliers_resource": None,
    }
