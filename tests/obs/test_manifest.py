"""Run manifests: content regression and file round-trip."""

import dataclasses
import json

import numpy as np

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    load_manifest,
    write_manifest,
)

REQUIRED_KEYS = {
    "schema",
    "kind",
    "created_at",
    "argv",
    "cwd",
    "git",
    "host",
    "versions",
    "config",
    "seeds",
    "policies",
    "engine",
}


@dataclasses.dataclass(frozen=True)
class _FakeConfig:
    horizon: int = 100
    seed: int = 7
    weights: tuple = (0.5, 0.5)


class TestBuildManifest:
    def test_required_keys_present(self):
        m = build_manifest()
        assert REQUIRED_KEYS <= set(m)
        assert m["schema"] == MANIFEST_SCHEMA_VERSION
        assert m["kind"] == "run"

    def test_is_json_serializable(self):
        m = build_manifest(
            config=_FakeConfig(),
            seeds=np.arange(3),
            policies=("LFSC",),
            engine="batched",
            extra={"array": np.ones(2), "obj": object()},
        )
        text = json.dumps(m)  # must not raise
        assert "LFSC" in text

    def test_dataclass_config_serialized_field_by_field(self):
        m = build_manifest(config=_FakeConfig(horizon=42))
        assert m["config"] == {"horizon": 42, "seed": 7, "weights": [0.5, 0.5]}

    def test_seeds_coerced_to_ints(self):
        m = build_manifest(seeds=np.array([1, 2, 3], dtype=np.int64))
        assert m["seeds"] == [1, 2, 3]
        assert all(type(s) is int for s in m["seeds"])

    def test_versions_capture_runtime(self):
        m = build_manifest()
        assert m["versions"]["python"]
        assert m["versions"]["numpy"] == np.__version__

    def test_git_info_present_in_repo(self):
        git = build_manifest()["git"]
        # In the repo this should be a 40-hex SHA; degrade gracefully outside.
        assert git["sha"] is None or len(git["sha"]) == 40

    def test_extra_included_only_when_given(self):
        assert "extra" not in build_manifest()
        assert build_manifest(extra={"k": 1})["extra"] == {"k": 1}


class TestWriteLoad:
    def test_directory_target_appends_filename(self, tmp_path):
        written = write_manifest(tmp_path / "out", kind="bench")
        assert written == tmp_path / "out" / "manifest.json"
        assert load_manifest(tmp_path / "out")["kind"] == "bench"

    def test_explicit_file_target(self, tmp_path):
        target = tmp_path / "custom.manifest.json"
        write_manifest(target, kind="figure", engine="reference")
        loaded = load_manifest(target)
        assert loaded["kind"] == "figure"
        assert loaded["engine"] == "reference"

    def test_prebuilt_manifest_written_verbatim(self, tmp_path):
        m = build_manifest(kind="replication", seeds=[4, 5])
        write_manifest(tmp_path / "m.json", m)
        assert load_manifest(tmp_path / "m.json") == m
