"""Zlib-framed traces: suffix-driven writing, magic-byte reading, frames.

The ``.zl`` format (see :mod:`repro.obs.trace`): 4-byte magic ``RZJ1``,
then one self-contained frame per flush — big-endian u32 payload length
followed by the zlib-compressed JSONL payload.  Unlike a gzip stream, a
truncated tail frame costs only that frame's records.
"""

import struct
import zlib

from repro.obs.trace import (
    ZLIB_FRAME_MAGIC,
    TraceRecorder,
    iter_trace,
    read_trace,
)
from tests.obs.test_trace import _record


class TestZlibRoundTrip:
    def test_10k_slot_sampled_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl.zl"
        written = []
        with TraceRecorder(path, sample_every=7, flush_every=64) as rec:
            for t in range(10_000):
                if rec.want(t):
                    record = _record(t=t, reward=float(t) * 0.25)
                    rec.record(record)
                    written.append(record)
        assert rec.records_written == len(written)
        assert read_trace(path) == written

    def test_file_leads_with_magic(self, tmp_path):
        path = tmp_path / "t.jsonl.zl"
        with TraceRecorder(path) as rec:
            rec.record(_record())
        with path.open("rb") as fh:
            assert fh.read(4) == ZLIB_FRAME_MAGIC

    def test_one_frame_per_flush(self, tmp_path):
        path = tmp_path / "t.jsonl.zl"
        with TraceRecorder(path, flush_every=10) as rec:
            for t in range(25):
                rec.record(_record(t=t))
        data = path.read_bytes()
        frames = 0
        at = len(ZLIB_FRAME_MAGIC)
        while at < len(data):
            (length,) = struct.unpack(">I", data[at : at + 4])
            payload = zlib.decompress(data[at + 4 : at + 4 + length])
            assert payload.endswith(b"\n")
            frames += 1
            at += 4 + length
        assert frames == 3  # 10 + 10 + 5 (close() flushes the tail)

    def test_reader_sniffs_magic_not_suffix(self, tmp_path):
        zl = tmp_path / "t.jsonl.zl"
        with TraceRecorder(zl) as rec:
            rec.record(_record(t=0))
            rec.record(_record(t=1))
        renamed = tmp_path / "t.jsonl"
        zl.rename(renamed)
        assert [r["t"] for r in iter_trace(renamed)] == [0, 1]

    def test_truncated_tail_frame_keeps_earlier_frames(self, tmp_path):
        """Chopping bytes off the last frame loses only that frame."""
        path = tmp_path / "t.jsonl.zl"
        with TraceRecorder(path, flush_every=8) as rec:
            for t in range(24):
                rec.record(_record(t=t))
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        salvaged = read_trace(path)
        assert [r["t"] for r in salvaged] == list(range(16))

    def test_smaller_than_plain(self, tmp_path):
        plain, zl = tmp_path / "a.jsonl", tmp_path / "a.jsonl.zl"
        records = [_record(t=t) for t in range(0, 2000)]
        with TraceRecorder(plain) as rec_a, TraceRecorder(zl) as rec_b:
            for r in records:
                rec_a.record(r)
                rec_b.record(r)
        assert zl.stat().st_size < plain.stat().st_size / 5
        assert read_trace(zl) == read_trace(plain)
