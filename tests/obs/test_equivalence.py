"""Tracing is observational: bit-identical trajectories with obs on or off.

The acceptance bar for the observability subsystem — for *both* slot
engines, running under a full tracing context (metrics registry + JSONL
recorder, sample_every=1) must produce byte-for-byte the same rewards,
violations, assignments, weight trajectories, and multipliers as running
with no context installed.  Any divergence means instrumentation touched a
policy RNG or reordered arithmetic, which would silently invalidate every
traced experiment.
"""

import numpy as np
import pytest

from repro.core.lfsc import LFSCPolicy
from repro.experiments.runner import ExperimentConfig, build_simulation
from repro.obs import observe
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import read_trace


def _run(exp, engine, trace_path=None):
    sim = build_simulation(exp)
    policy = LFSCPolicy(exp.lfsc_config().with_overrides(engine=engine))
    if trace_path is None:
        result = sim.run(policy, exp.horizon)
    else:
        with observe(trace_path=trace_path, registry=MetricsRegistry()):
            result = sim.run(policy, exp.horizon)
    return result, policy


def _assert_bit_identical(plain, traced):
    plain_result, plain_policy = plain
    traced_result, traced_policy = traced
    np.testing.assert_array_equal(plain_result.reward, traced_result.reward)
    np.testing.assert_array_equal(
        plain_result.expected_reward, traced_result.expected_reward
    )
    np.testing.assert_array_equal(
        plain_result.violation_qos, traced_result.violation_qos
    )
    np.testing.assert_array_equal(
        plain_result.violation_resource, traced_result.violation_resource
    )
    np.testing.assert_array_equal(plain_result.accepted, traced_result.accepted)
    np.testing.assert_array_equal(plain_policy.log_w, traced_policy.log_w)
    np.testing.assert_array_equal(
        plain_policy.multipliers.qos, traced_policy.multipliers.qos
    )
    np.testing.assert_array_equal(
        plain_policy.multipliers.resource, traced_policy.multipliers.resource
    )


class TestTracingEquivalence:
    @pytest.mark.parametrize("engine", ["reference", "batched"])
    def test_trace_on_off_identical(self, engine, tmp_path):
        exp = ExperimentConfig.tiny()
        plain = _run(exp, engine)
        traced = _run(exp, engine, trace_path=tmp_path / f"{engine}.jsonl")
        _assert_bit_identical(plain, traced)

    @pytest.mark.parametrize("engine", ["reference", "batched"])
    def test_trace_records_match_simulation(self, engine, tmp_path):
        """The trace is a faithful per-slot account of the run it recorded."""
        exp = ExperimentConfig.tiny()
        path = tmp_path / "t.jsonl"
        result, _ = _run(exp, engine, trace_path=path)
        records = read_trace(path)
        assert len(records) == exp.horizon
        assert [r["t"] for r in records] == list(range(exp.horizon))
        np.testing.assert_allclose(
            [r["reward"] for r in records], result.reward, rtol=1e-12
        )
        for r in records:
            assert r["assigned"] == sum(r["per_scn_assigned"])

    def test_seed_sweep_batched(self, tmp_path):
        # DepRound is the RNG-heaviest path — sweep seeds so any stream
        # perturbation by instrumentation shows up.
        base = ExperimentConfig.tiny()
        for seed in (1, 2, 3):
            exp = base.with_overrides(seed=seed)
            plain = _run(exp, "batched")
            traced = _run(exp, "batched", trace_path=tmp_path / f"s{seed}.jsonl")
            _assert_bit_identical(plain, traced)

    def test_metrics_only_context_identical(self):
        """The bench's 'tracing disabled' state: context with no recorder."""
        exp = ExperimentConfig.tiny()
        plain = _run(exp, "batched")
        sim = build_simulation(exp)
        policy = LFSCPolicy(exp.lfsc_config())
        with observe(registry=MetricsRegistry()):
            result = sim.run(policy, exp.horizon)
        _assert_bit_identical(plain, (result, policy))
