"""Trace recorder: schema round-trip, sampling, and bounded buffering."""

import json

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    iter_trace,
    read_trace,
    validate_record,
)


def _record(t=0, **overrides):
    rec = {
        "t": t,
        "policy": "LFSC",
        "assigned": 3,
        "per_scn_assigned": [1, 2],
        "reward": 4.5,
        "expected_reward": 4.2,
        "violation_qos": 0.1,
        "violation_resource": 0.0,
        "multipliers_qos": [0.5, 0.25],
        "multipliers_resource": [0.0, 0.1],
        "spans": {"sim.select": 1e-4},
    }
    rec.update(overrides)
    return rec


class TestSchema:
    def test_valid_record_passes(self):
        validate_record(_record())

    def test_optional_fields_may_be_none(self):
        validate_record(
            _record(expected_reward=None, multipliers_qos=None, multipliers_resource=None)
        )

    def test_missing_field_rejected(self):
        rec = _record()
        del rec["reward"]
        with pytest.raises(ValueError, match="reward"):
            validate_record(rec)

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            validate_record(_record(policy=7))

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError, match="span"):
            validate_record(_record(spans={"sim.select": -1.0}))

    def test_schema_covers_every_written_field(self):
        assert set(_record()) == set(TRACE_SCHEMA)


class TestRecorder:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [_record(t=t, reward=float(t)) for t in range(5)]
        with TraceRecorder(path) as rec:
            for r in records:
                rec.record(r)
        assert read_trace(path) == records
        for r in iter_trace(path):
            validate_record(r)

    def test_sampling_keeps_every_nth(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path, sample_every=3) as rec:
            for t in range(10):
                if rec.want(t):
                    rec.record(_record(t=t))
        assert [r["t"] for r in read_trace(path)] == [0, 3, 6, 9]

    def test_buffer_flushes_at_threshold(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = TraceRecorder(path, flush_every=4)
        for t in range(3):
            rec.record(_record(t=t))
        assert len(rec._buffer) == 3  # below threshold: still buffered
        rec.record(_record(t=3))
        assert rec._buffer == []  # hit threshold: flushed to disk
        assert len(read_trace(path)) == 4
        rec.close()

    def test_records_written_counter(self, tmp_path):
        rec = TraceRecorder(tmp_path / "t.jsonl", sample_every=2)
        for t in range(6):
            if rec.want(t):
                rec.record(_record(t=t))
        rec.close()
        assert rec.records_written == 3

    def test_last_record_kept(self, tmp_path):
        with TraceRecorder(tmp_path / "t.jsonl") as rec:
            rec.record(_record(t=41))
            rec.record(_record(t=42))
        assert rec.last_record["t"] == 42

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with TraceRecorder(path) as rec:
            rec.record(_record())
        assert path.exists()

    def test_output_is_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as rec:
            rec.record(_record(t=0))
            rec.record(_record(t=1))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)
