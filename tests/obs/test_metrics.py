"""Metrics registry: instrument semantics, snapshots, and merge algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    global_registry,
    merge_snapshots,
    reset_global_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("jobs").inc(-1.0)

    def test_counter_is_cached_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("level")
        g.set(1.0)
        g.set(-7.0)
        assert g.value == -7.0

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert h.total == 4
        assert h.sum == pytest.approx(106.4)
        assert h.mean == pytest.approx(106.4 / 4)

    def test_histogram_requires_increasing_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0))

    def test_name_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestSnapshots:
    def _registry(self, scale=1.0):
        reg = MetricsRegistry()
        reg.counter("runs").inc(2 * scale)
        reg.gauge("last").set(5 * scale)
        reg.histogram("lat", bounds=(1.0, 10.0)).observe(3.0 * scale)
        return reg

    def test_snapshot_is_plain_data(self):
        snap = self._registry().snapshot()
        assert snap["counters"] == {"runs": 2.0}
        assert snap["gauges"] == {"last": 5.0}
        assert snap["histograms"]["lat"]["total"] == 1

    def test_merge_adds_counters_and_histograms(self):
        a = self._registry().snapshot()
        b = self._registry(scale=2.0).snapshot()
        m = merge_snapshots(a, b)
        assert m["counters"]["runs"] == 6.0
        assert m["histograms"]["lat"]["total"] == 2
        assert m["gauges"]["last"] == 10.0  # last-write-wins: b's value

    def test_merge_snapshot_into_registry(self):
        reg = self._registry()
        reg.merge_snapshot(self._registry(scale=3.0).snapshot())
        assert reg.counter("runs").value == 8.0

    def test_diff_recovers_delta(self):
        reg = self._registry()
        before = reg.snapshot()
        reg.counter("runs").inc(10)
        reg.histogram("lat", bounds=(1.0, 10.0)).observe(100.0)
        delta = diff_snapshots(reg.snapshot(), before)
        assert delta["counters"]["runs"] == 10.0
        assert delta["histograms"]["lat"]["total"] == 1
        assert sum(delta["histograms"]["lat"]["counts"]) == 1

    def test_diff_rejects_bound_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", bounds=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError):
            diff_snapshots(a.snapshot(), b.snapshot())

    def test_global_registry_reset(self):
        global_registry().counter("tmp").inc()
        reset_global_registry()
        assert "tmp" not in global_registry().snapshot()["counters"]


_snapshot_strategy = st.builds(
    lambda counts, gauge, obs: _make_snapshot(counts, gauge, obs),
    counts=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=3
    ),
    gauge=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    obs=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False), max_size=5
    ),
)


def _make_snapshot(counts, gauge, obs):
    reg = MetricsRegistry()
    for c in counts:
        reg.counter("runs").inc(c)
    reg.gauge("last").set(gauge)
    h = reg.histogram("lat", bounds=(1.0, 10.0))
    for v in obs:
        h.observe(v)
    return reg.snapshot()


def _commutative_part(snap):
    """Everything except gauges, which are last-write-wins by design."""
    return {"counters": snap["counters"], "histograms": snap["histograms"]}


@given(a=_snapshot_strategy, b=_snapshot_strategy, c=_snapshot_strategy)
@settings(max_examples=60, deadline=None)
def test_merge_is_associative(a, b, c):
    """(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) — workers can merge in any grouping."""
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert _approx_equal(left, right)
    # Counters/histograms also commute; gauges keep the right operand.
    assert _approx_equal(
        dict(_commutative_part(merge_snapshots(a, b)), gauges={}),
        dict(_commutative_part(merge_snapshots(b, a)), gauges={}),
    )


def _approx_equal(x, y, tol=1e-9):
    if isinstance(x, dict):
        return set(x) == set(y) and all(_approx_equal(x[k], y[k], tol) for k in x)
    if isinstance(x, list):
        return len(x) == len(y) and all(_approx_equal(a, b, tol) for a, b in zip(x, y))
    if isinstance(x, float) and isinstance(y, float):
        return abs(x - y) <= tol * max(1.0, abs(x), abs(y))
    return x == y
