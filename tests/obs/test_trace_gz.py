"""Gzip-compressed traces: suffix-driven writing, magic-byte reading."""

import gzip

from repro.obs.trace import TraceRecorder, iter_trace, read_trace
from tests.obs.test_trace import _record


class TestGzipRoundTrip:
    def test_10k_slot_sampled_round_trip(self, tmp_path):
        """A 10k-slot horizon sampled every 7th slot survives a gz round trip."""
        path = tmp_path / "trace.jsonl.gz"
        written = []
        with TraceRecorder(path, sample_every=7, flush_every=64) as rec:
            for t in range(10_000):
                if rec.want(t):
                    record = _record(t=t, reward=float(t) * 0.25)
                    rec.record(record)
                    written.append(record)
        assert len(written) == 1429  # ceil(10_000 / 7)
        assert rec.records_written == len(written)
        assert read_trace(path) == written

    def test_file_is_actually_gzip(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with TraceRecorder(path) as rec:
            rec.record(_record())
        with path.open("rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        with gzip.open(path, "rt") as fh:
            assert fh.read().count("\n") == 1

    def test_plain_suffix_stays_uncompressed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(path) as rec:
            rec.record(_record())
        assert path.read_text().startswith("{")

    def test_reader_sniffs_magic_not_suffix(self, tmp_path):
        """A renamed .gz file (no suffix) still loads via magic-byte detection."""
        gz = tmp_path / "t.jsonl.gz"
        with TraceRecorder(gz) as rec:
            rec.record(_record(t=0))
            rec.record(_record(t=1))
        renamed = tmp_path / "t.jsonl"
        gz.rename(renamed)
        assert [r["t"] for r in iter_trace(renamed)] == [0, 1]

    def test_smaller_than_plain(self, tmp_path):
        plain, gz = tmp_path / "a.jsonl", tmp_path / "a.jsonl.gz"
        records = [_record(t=t) for t in range(0, 2000)]
        with TraceRecorder(plain) as rec_a, TraceRecorder(gz) as rec_b:
            for r in records:
                rec_a.record(r)
                rec_b.record(r)
        assert gz.stat().st_size < plain.stat().st_size / 5
        assert read_trace(gz) == read_trace(plain)
