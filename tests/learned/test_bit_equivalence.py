"""Bit-equivalence gates for the learned tier.

Windowed ≡ per-slot, serial ≡ parallel, and the scenario round-trips — each
learned policy must satisfy the same trajectory invariants the LFSC line-up
is held to.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.experiments.runner import (
    ExperimentConfig,
    build_simulation,
    make_policy,
    run_experiment,
)

LEARNED_SPECS = ("linucb", "linthompson", "dqn(batch=8, buffer=64)")

SERIES = ("reward", "expected_reward", "completed", "consumption", "accepted")


def assert_results_equal(a, b) -> None:
    for name in SERIES:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name), err_msg=name)


@pytest.mark.parametrize("spec", LEARNED_SPECS)
@pytest.mark.parametrize("window", [1, 7, 64])
def test_windowed_equals_per_slot(spec, window):
    cfg = ExperimentConfig.tiny(horizon=40)
    sim = build_simulation(cfg)
    per_slot = sim.run(make_policy(spec, cfg, sim.truth), cfg.horizon, window=0)
    sim2 = build_simulation(cfg)
    windowed = sim2.run(make_policy(spec, cfg, sim2.truth), cfg.horizon, window=window)
    assert_results_equal(per_slot, windowed)


def test_serial_equals_parallel():
    cfg = ExperimentConfig.tiny(horizon=24)
    serial = run_experiment(cfg, LEARNED_SPECS, workers=None)
    parallel = run_experiment(cfg, LEARNED_SPECS, workers=2)
    assert serial.keys() == parallel.keys()
    for name in serial:
        assert_results_equal(serial[name], parallel[name])


@pytest.mark.parametrize("spec", LEARNED_SPECS)
def test_deterministic_across_runs(spec):
    cfg = ExperimentConfig.tiny(horizon=24)
    sim = build_simulation(cfg)
    a = sim.run(make_policy(spec, cfg, sim.truth), cfg.horizon)
    sim2 = build_simulation(cfg)
    b = sim2.run(make_policy(spec, cfg, sim2.truth), cfg.horizon)
    assert_results_equal(a, b)


def test_hyperparameter_variants_share_policy_stream():
    """Two alphas, same name → same exploration randomness, different scores."""
    cfg = ExperimentConfig.tiny(horizon=24)
    sim = build_simulation(cfg)
    a = sim.run(make_policy("linucb(alpha=0.1)", cfg, sim.truth), cfg.horizon)
    sim2 = build_simulation(cfg)
    b = sim2.run(make_policy("linucb(alpha=5.0)", cfg, sim2.truth), cfg.horizon)
    # Different hyperparameters must actually change the trajectory …
    assert not np.array_equal(a.reward, b.reward)
    # … while both stay deterministic (pure functions of (config, spec)).
    sim3 = build_simulation(cfg)
    a2 = sim3.run(make_policy("linucb(alpha=0.1)", cfg, sim3.truth), cfg.horizon)
    assert_results_equal(a, a2)


@pytest.mark.parametrize(
    "scenario", ["nonstationary_drift", "nonstationary_regime", "vehicular"]
)
def test_learned_specs_run_on_scenarios(scenario):
    """The registry specs run end-to-end on non-stationary + mobility worlds."""
    result = api.run(
        scenario=scenario,
        policies=("linucb(alpha=0.5)", "linthompson", "dqn(batch=8, buffer=64)"),
        horizon=20,
    )
    for spec in result.policies:
        res = result[spec]
        assert res.horizon == 20
        assert np.isfinite(res.total_reward)
        assert res.total_reward >= 0.0


def test_api_accepts_mixed_spec_forms():
    from repro.policies import PolicySpec

    result = api.run(
        scale="tiny",
        horizon=12,
        policies=("Random", PolicySpec.make("linucb", alpha=0.5)),
    )
    assert set(result.policies) == {"Random", "linucb(alpha=0.5)"}


def test_api_rejects_unknown_spec_before_running():
    with pytest.raises(ValueError, match="unknown policy"):
        api.run(scale="tiny", horizon=12, policies=("Random", "not-a-policy"))
