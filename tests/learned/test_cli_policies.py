"""The ``repro policies`` subcommand and registry specs on the run surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestPoliciesList:
    def test_lists_every_registered_policy(self, capsys):
        import repro.policies as policies

        assert main(["policies", "list"]) == 0
        out = capsys.readouterr().out
        for name in policies.names():
            assert name in out

    def test_tag_filter(self, capsys):
        assert main(["policies", "list", "--tag", "learned"]) == 0
        out = capsys.readouterr().out
        assert "linucb" in out and "dqn" in out
        assert "LFSC " not in out

    def test_unknown_tag_is_empty_not_error(self, capsys):
        assert main(["policies", "list", "--tag", "nonesuch"]) == 0
        assert "no policies registered" in capsys.readouterr().out


class TestPoliciesDescribe:
    def test_describe_prints_schema(self, capsys):
        assert main(["policies", "describe", "dqn"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["name"] == "dqn"
        assert info["defaults"]["target_every"] == 50

    def test_unknown_name_fails_with_listing(self, capsys):
        assert main(["policies", "describe", "nonesuch"]) == 1
        err = capsys.readouterr().err
        assert "unknown policy name" in err and "LFSC" in err


class TestRunWithSpecs:
    def test_run_accepts_parameterized_spec(self, capsys):
        rc = main(
            [
                "run",
                "--horizon",
                "15",
                "--workers",
                "1",
                "--policies",
                "Random",
                "linucb(alpha=0.5)",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "linucb(alpha=0.5)" in out

    def test_run_rejects_unknown_spec_before_simulating(self, capsys):
        rc = main(["run", "--horizon", "15", "--policies", "nonesuch"])
        assert rc == 2
        assert "unknown policy name" in capsys.readouterr().err

    def test_run_rejects_bad_parameter(self, capsys):
        rc = main(["run", "--horizon", "15", "--policies", "linucb(gamma=1)"])
        assert rc == 2
        assert "no parameter" in capsys.readouterr().err
