"""The policy registry: specs, fail-closed resolution, and the legacy seam."""

from __future__ import annotations

import numpy as np
import pytest

import repro.policies as policies
from repro.experiments import runner
from repro.policies import (
    PolicyDefinition,
    PolicyError,
    PolicySpec,
    UnknownPolicyError,
    parse_policy_spec,
)


class TestSpecParsing:
    def test_bare_name(self):
        spec = parse_policy_spec("LFSC")
        assert spec == PolicySpec(name="LFSC")
        assert str(spec) == "LFSC"

    def test_parameterized_round_trip(self):
        spec = parse_policy_spec("linucb(alpha=0.5, l2=2.0)")
        assert spec.name == "linucb"
        assert spec.param_dict() == {"alpha": 0.5, "l2": 2.0}
        assert parse_policy_spec(str(spec)) == spec

    def test_make_round_trip(self):
        spec = PolicySpec.make("dqn", hidden=16, lr=0.1)
        assert parse_policy_spec(str(spec)) == spec

    def test_passthrough(self):
        spec = PolicySpec(name="vUCB")
        assert parse_policy_spec(spec) is spec

    @pytest.mark.parametrize(
        "bad",
        [
            "linucb(alpha=0.5",       # missing close paren
            "linucb(0.5)",            # positional arg
            "linucb(alpha=foo)",      # non-literal value
            "linucb(alpha=0.5, alpha=1.0)",  # repeated parameter
            "linucb(**kw)",           # ** expansion
            "(alpha=1)",              # empty name
            "bad name(x=1)",          # invalid name characters
            "",                       # empty string
        ],
    )
    def test_malformed_specs_fail_typed(self, bad):
        with pytest.raises(PolicyError):
            parse_policy_spec(bad)

    def test_non_string_fails(self):
        with pytest.raises(PolicyError, match="spec must be a string"):
            parse_policy_spec(42)


class TestResolution:
    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownPolicyError, match="unknown policy name 'nope'"):
            policies.resolve_policy("nope")
        with pytest.raises(UnknownPolicyError, match="LFSC"):
            policies.resolve_policy("nope")

    def test_unknown_error_is_value_and_key_error(self):
        with pytest.raises(ValueError):
            policies.get("nope")
        with pytest.raises(KeyError):
            policies.get("nope")

    def test_unknown_parameter(self):
        with pytest.raises(PolicyError, match="no parameter"):
            policies.resolve_policy("linucb(gamma=1.0)")

    def test_parameter_type_mismatch(self):
        with pytest.raises(PolicyError, match="expects"):
            policies.resolve_policy("linucb(alpha='big')")

    def test_bool_is_not_a_number(self):
        with pytest.raises(PolicyError):
            policies.resolve_policy("linucb(alpha=True)")

    def test_defaults_overlay(self):
        definition, params = policies.resolve_policy("linucb(alpha=2.5)")
        assert definition.name == "linucb"
        assert params["alpha"] == 2.5
        assert params["l2"] == 1.0  # untouched default

    def test_every_builtin_resolves(self):
        for name in policies.names():
            definition, params = policies.resolve_policy(name)
            assert definition.name == name
            assert params == dict(definition.defaults)


class TestRegistration:
    def test_duplicate_fails_without_replace(self):
        with pytest.raises(PolicyError, match="already registered"):
            policies.register_policy("LFSC", lambda cfg, truth, params: None)

    def test_register_and_build_custom(self):
        class Probe:
            name = "probe-policy"

            def __init__(self, knob):
                self.knob = knob

        try:
            policies.register_policy(
                "probe-policy",
                lambda cfg, truth, params: Probe(params["knob"]),
                params_schema={"knob": 3},
                tags=("test",),
            )
            cfg = runner.ExperimentConfig.tiny(horizon=4)
            built = policies.make_policy("probe-policy(knob=7)", cfg, truth=None)
            assert isinstance(built, Probe) and built.knob == 7
            assert "probe-policy" in [p.name for p in policies.list_policies(tag="test")]
        finally:
            policies._REGISTRY.pop("probe-policy", None)

    def test_normalize_policy_arg_accepts_definition(self):
        definition = PolicyDefinition(
            name="probe-def", description="", builder=lambda cfg, truth, params: None
        )
        try:
            assert policies.normalize_policy_arg(definition) == "probe-def"
            # Same object again: fine.  A *different* definition of the same
            # name: conflict.
            assert policies.normalize_policy_arg(definition) == "probe-def"
            clone = PolicyDefinition(
                name="probe-def", description="x", builder=lambda cfg, truth, params: None
            )
            with pytest.raises(PolicyError, match="conflicts"):
                policies.normalize_policy_arg(clone)
        finally:
            policies._REGISTRY.pop("probe-def", None)

    def test_normalize_specs_canonicalizes(self):
        out = policies.normalize_specs(["LFSC", "linucb(l2=2.0, alpha=0.5)"])
        assert out == ("LFSC", "linucb(alpha=0.5, l2=2.0)")

    def test_describe_json_safe(self):
        import json

        info = policies.describe("dqn")
        json.dumps(info)
        assert info["defaults"]["hidden"] == 32


class TestLegacySeam:
    """The runner's historical surface keeps working verbatim."""

    def test_default_policies_re_export(self):
        assert runner.DEFAULT_POLICIES is policies.DEFAULT_POLICIES
        assert runner.DEFAULT_POLICIES == ("Oracle", "LFSC", "vUCB", "FML", "Random")

    def test_runner_make_policy_unknown_message(self):
        cfg = runner.ExperimentConfig.tiny(horizon=4)
        with pytest.raises(ValueError, match="unknown policy"):
            runner.make_policy("definitely-not-registered", cfg, truth=None)

    @pytest.mark.parametrize(
        "name,cls_path",
        [
            ("Oracle", "repro.baselines.oracle.OraclePolicy"),
            ("Oracle-unconstrained", "repro.baselines.oracle.UnconstrainedOraclePolicy"),
            ("LFSC", "repro.core.lfsc.LFSCPolicy"),
            ("LFSC-adaptive", "repro.core.adaptive.AdaptiveLFSCPolicy"),
            ("vUCB", "repro.baselines.vucb.VUCBPolicy"),
            ("FML", "repro.baselines.fml.FMLPolicy"),
            ("Random", "repro.baselines.random_policy.RandomPolicy"),
            ("eps-greedy", "repro.baselines.extras.EpsilonGreedyPolicy"),
            ("thompson", "repro.baselines.extras.ThompsonSamplingPolicy"),
            ("linucb", "repro.learned.linucb.LinUCBPolicy"),
            ("linthompson", "repro.learned.linucb.LinThompsonPolicy"),
            ("dqn", "repro.learned.dqn.DQNPolicy"),
        ],
    )
    def test_every_name_builds_expected_class(self, name, cls_path):
        import importlib

        module_name, _, cls_name = cls_path.rpartition(".")
        cls = getattr(importlib.import_module(module_name), cls_name)
        cfg = runner.ExperimentConfig.tiny(horizon=4)
        truth = runner.build_truth(cfg)
        built = runner.make_policy(name, cfg, truth)
        assert isinstance(built, cls)

    def test_registry_name_keys_rng_stream(self):
        """Parameterized variants share the base name → same policy stream."""
        cfg = runner.ExperimentConfig.tiny(horizon=4)
        truth = runner.build_truth(cfg)
        a = runner.make_policy("linucb(alpha=0.5)", cfg, truth)
        b = runner.make_policy("linucb(alpha=2.0)", cfg, truth)
        assert a.name == b.name == "linucb"

    def test_legacy_chain_matches_registry_behaviour(self):
        """Registry-built vUCB runs identically to the pre-registry default."""
        from repro.baselines.vucb import VUCBPolicy

        cfg = runner.ExperimentConfig.tiny(horizon=12)
        sim = runner.build_simulation(cfg)
        via_registry = sim.run(
            runner.make_policy("vUCB", cfg, sim.truth), cfg.horizon
        )
        sim2 = runner.build_simulation(cfg)
        direct = sim2.run(VUCBPolicy(cfg.partition), cfg.horizon)
        np.testing.assert_array_equal(via_registry.reward, direct.reward)
