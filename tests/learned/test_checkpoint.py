"""Checkpoint/resume for the learned tier through ``repro-checkpoint/v1``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.network import NetworkConfig
from repro.experiments.runner import ExperimentConfig
from repro.learned import DQNPolicy, LinThompsonPolicy, LinUCBPolicy
from repro.service import OnlineSession

HORIZON = 24

SERIES = (
    "reward",
    "expected_reward",
    "completed",
    "consumption",
    "accepted",
    "violation_qos",
    "violation_resource",
)

LEARNED_SPECS = ("linucb(alpha=0.5)", "linthompson", "dqn(batch=8, buffer=64)")


def assert_results_equal(a, b) -> None:
    for name in SERIES:
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name), err_msg=name)


@pytest.mark.parametrize("spec", LEARNED_SPECS)
@pytest.mark.parametrize("k", [0, HORIZON // 2])
def test_resume_is_bit_identical(spec, k, tmp_path):
    """Checkpoint at slot k + restore ≡ an uninterrupted run, bitwise."""
    cfg = ExperimentConfig.tiny(horizon=HORIZON)
    baseline = OnlineSession(cfg, policy=spec)
    baseline.run()

    first = OnlineSession(cfg, policy=spec)
    first.run(k)
    path = first.save(tmp_path / "ck.bin")

    resumed = OnlineSession.from_checkpoint(path)
    assert resumed.t == k
    assert resumed.policy_name == spec
    resumed.run()

    assert_results_equal(baseline.result(), resumed.result())
    base_state = baseline.policy.checkpoint_state()
    res_state = resumed.policy.checkpoint_state()
    assert base_state.keys() == res_state.keys()
    for key, value in base_state.items():
        if isinstance(value, np.ndarray):
            np.testing.assert_array_equal(value, res_state[key], err_msg=key)
        else:
            assert value == res_state[key], key


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LinUCBPolicy(alpha=0.5),
        lambda: LinThompsonPolicy(),
        lambda: DQNPolicy(batch=4, buffer=32, hidden=8),
    ],
)
def test_restore_shape_mismatch_fails(factory):
    """A snapshot from a different network geometry is rejected, not mangled."""
    rng = np.random.default_rng(0)
    policy = factory()
    policy.reset(NetworkConfig(num_scns=4, capacity=2, alpha=1.0, beta=3.0), 10, rng)
    snapshot = policy.checkpoint_state()

    other = factory()
    other.reset(NetworkConfig(num_scns=6, capacity=2, alpha=1.0, beta=3.0), 10, rng)
    with pytest.raises(ValueError, match="shape mismatch"):
        other.restore_checkpoint_state(snapshot)


def test_checkpoint_state_round_trips_in_place():
    """restore(checkpoint()) reproduces the exact scorer state."""
    rng = np.random.default_rng(7)
    policy = DQNPolicy(batch=4, buffer=32, hidden=8)
    network = NetworkConfig(num_scns=4, capacity=2, alpha=1.0, beta=3.0)
    policy.reset(network, 10, rng)
    policy.W1 += 0.5  # drift the online net away from the target copy
    snapshot = policy.checkpoint_state()
    assert snapshot["t"] == 0

    other = DQNPolicy(batch=4, buffer=32, hidden=8)
    other.reset(network, 10, np.random.default_rng(99))
    other.restore_checkpoint_state(snapshot)
    np.testing.assert_array_equal(other.W1, policy.W1)
    np.testing.assert_array_equal(other.tW2, policy.tW2)
    assert other.b2 == policy.b2
    assert other.buf_fill == policy.buf_fill
