"""The LEARNED spawn-key namespace (stream contract v2 extension)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import (
    ENV_SPAWN_KEY,
    FLEET_SPAWN_KEY,
    LEARNED_SPAWN_KEY,
    POLICY_SPAWN_KEY,
    REPLICATION_SPAWN_KEY,
    RngFactory,
    env_seed_sequence,
    learned_seed_sequence,
    policy_seed_sequence,
    stream_token,
)


def test_tag_is_distinct_from_every_other_namespace():
    tags = {
        ENV_SPAWN_KEY,
        POLICY_SPAWN_KEY,
        FLEET_SPAWN_KEY,
        REPLICATION_SPAWN_KEY,
        LEARNED_SPAWN_KEY,
    }
    assert len(tags) == 5


def test_spawn_key_structure():
    ss = learned_seed_sequence(42, "linucb(alpha=0.5)")
    assert ss.entropy == 42
    key = tuple(ss.spawn_key)
    assert key[0] == LEARNED_SPAWN_KEY
    assert key[1:] == tuple("linucb(alpha=0.5)".encode("utf-8"))


def test_disjoint_from_env_and_policy_for_same_name():
    """No label can alias an env or policy stream of the same seed."""
    for name in ("workload", "realizations", "LFSC", "linucb"):
        tokens = {
            stream_token(env_seed_sequence(0, name)),
            stream_token(policy_seed_sequence(0, name)),
            stream_token(learned_seed_sequence(0, name)),
        }
        assert len(tokens) == 3


def test_pure_function_of_seed_and_label():
    a = stream_token(learned_seed_sequence(5, "v0"))
    b = stream_token(learned_seed_sequence(5, "v0"))
    assert a == b
    assert a != stream_token(learned_seed_sequence(5, "v1"))
    assert a != stream_token(learned_seed_sequence(6, "v0"))


def test_factory_caches_stream_objects():
    fac = RngFactory(3)
    assert fac.learned("v0") is fac.learned("v0")
    assert fac.learned("v0") is not fac.learned("v1")


def test_factory_matches_module_level_derivation():
    fac = RngFactory(3)
    direct = np.random.default_rng(learned_seed_sequence(3, "v0"))
    np.testing.assert_array_equal(fac.learned("v0").random(8), direct.random(8))


def test_replication_child_roots_do_not_alias():
    """A factory rooted at a replication child keeps its own learned streams."""
    from repro.utils.rng import replication_seed_sequence

    child = replication_seed_sequence(0, 1)
    a = stream_token(learned_seed_sequence(child, "v0"))
    b = stream_token(learned_seed_sequence(0, "v0"))
    assert a != b
