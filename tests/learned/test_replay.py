"""The replay-evaluation harness: record once, replay deterministically."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.learned import (
    ReplayError,
    ReplayWorkload,
    record_stream,
    replay,
    replay_grid,
)

HORIZON = 24


@pytest.fixture(scope="module")
def cfg() -> ExperimentConfig:
    return ExperimentConfig.tiny(horizon=HORIZON)


@pytest.fixture(scope="module")
def stream(cfg):
    return record_stream(cfg)


class TestRecord:
    def test_recorded_slots_carry_edges_and_cells(self, stream):
        assert len(stream) == HORIZON
        for slot in stream.slots:
            assert slot.edges is not None
            assert slot.truth_cells is not None
            assert slot.edges.num_tasks == len(slot.tasks)

    def test_record_is_deterministic(self, cfg, stream):
        again = record_stream(cfg)
        for a, b in zip(stream.slots, again.slots):
            np.testing.assert_array_equal(a.tasks.contexts, b.tasks.contexts)
            for ca, cb in zip(a.coverage, b.coverage):
                np.testing.assert_array_equal(ca, cb)

    def test_record_window_size_is_invisible(self, cfg, stream):
        """Chunking the precompute differently cannot change the draws."""
        other = record_stream(cfg, window=5)
        for a, b in zip(stream.slots, other.slots):
            np.testing.assert_array_equal(a.tasks.contexts, b.tasks.contexts)
            np.testing.assert_array_equal(a.edges.key, b.edges.key)

    def test_bad_horizon_fails(self, cfg):
        with pytest.raises(ValueError):
            record_stream(cfg, horizon=0)


class TestReplay:
    @pytest.mark.parametrize("spec", ["linucb", "linthompson", "dqn(batch=8, buffer=64)"])
    def test_replay_equals_live_run(self, cfg, stream, spec):
        """variant=None replay is bit-identical to a live simulation."""
        sim = build_simulation(cfg)
        live = sim.run(make_policy(spec, cfg, sim.truth), cfg.horizon)
        replayed = replay(stream, spec)
        np.testing.assert_array_equal(live.reward, replayed.reward)
        np.testing.assert_array_equal(live.expected_reward, replayed.expected_reward)
        np.testing.assert_array_equal(live.accepted, replayed.accepted)

    def test_replay_is_deterministic(self, stream):
        a = replay(stream, "dqn(batch=8, buffer=64)")
        b = replay(stream, "dqn(batch=8, buffer=64)")
        np.testing.assert_array_equal(a.reward, b.reward)

    def test_replay_accepts_prebuilt_policy(self, cfg, stream):
        policy = make_policy("linucb", cfg, build_simulation(cfg).truth)
        a = replay(stream, policy)
        b = replay(stream, "linucb")
        np.testing.assert_array_equal(a.reward, b.reward)

    def test_partial_horizon(self, stream):
        short = replay(stream, "linucb", horizon=10)
        full = replay(stream, "linucb")
        np.testing.assert_array_equal(short.reward, full.reward[:10])

    def test_horizon_beyond_recorded_fails(self, stream):
        with pytest.raises(ReplayError, match="exceeds the recorded horizon"):
            replay(stream, "linucb", horizon=HORIZON + 1)

    def test_slot_out_of_range_fails(self, stream):
        workload = ReplayWorkload(stream)
        with pytest.raises(ReplayError, match="outside the recorded stream"):
            workload.slot(HORIZON, np.random.default_rng(0))

    def test_replay_workload_never_draws(self, stream):
        workload = ReplayWorkload(stream)
        rng = np.random.default_rng(123)
        before = rng.bit_generator.state
        workload.slot(0, rng)
        assert rng.bit_generator.state == before


class TestVariants:
    def test_same_label_is_deterministic(self, stream):
        a = replay(stream, "linthompson", variant="v0")
        b = replay(stream, "linthompson", variant="v0")
        np.testing.assert_array_equal(a.reward, b.reward)

    def test_distinct_labels_get_distinct_streams(self, stream):
        a = replay(stream, "linthompson", variant="v0")
        b = replay(stream, "linthompson", variant="v1")
        assert not np.array_equal(a.reward, b.reward)

    def test_variant_differs_from_frozen_contract_stream(self, stream):
        base = replay(stream, "linthompson")
        variant = replay(stream, "linthompson", variant="linthompson")
        assert not np.array_equal(base.reward, variant.reward)


class TestGrid:
    def test_grid_keys_are_canonical(self, stream):
        out = replay_grid(stream, ["linucb(l2=2.0, alpha=0.5)", "Random"])
        assert list(out) == ["linucb(alpha=0.5, l2=2.0)", "Random"]

    def test_grid_matches_individual_replays(self, stream):
        out = replay_grid(stream, ["linucb", "linthompson"])
        solo = replay(stream, "linucb")
        np.testing.assert_array_equal(out["linucb"].reward, solo.reward)

    def test_duplicate_spec_fails(self, stream):
        # Canonicalization catches re-ordered spellings of the same spec.
        with pytest.raises(ReplayError, match="duplicate"):
            replay_grid(
                stream, ["linucb(l2=2.0, alpha=0.5)", "linucb(alpha=0.5, l2=2.0)"]
            )

    def test_variant_streams_decouple_specs(self, stream):
        shared = replay_grid(stream, ["linthompson"])
        independent = replay_grid(stream, ["linthompson"], variant_streams=True)
        assert not np.array_equal(
            shared["linthompson"].reward, independent["linthompson"].reward
        )


def test_non_windowable_workload_falls_back(monkeypatch):
    """Recording still works when the workload refuses windowed generation."""
    cfg = ExperimentConfig.tiny(horizon=8)
    from repro.env.workload import SyntheticWorkload

    monkeypatch.setattr(SyntheticWorkload, "windowable", False)
    stream = record_stream(cfg)
    assert len(stream) == 8
    assert all(slot.edges is None for slot in stream.slots)
    result = replay(stream, "linucb")
    assert np.isfinite(result.total_reward)
