"""Tests for repro.scenarios.loader — TOML/JSON scenario declarations."""

import json

import pytest

from repro import scenarios
from repro.scenarios import (
    ScenarioConfigError,
    ScenarioSpec,
    UnknownScenarioError,
    load_scenario_file,
    looks_like_path,
    resolve_scenario,
)


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestParsing:
    def test_toml_round_trip(self, tmp_path):
        path = write(
            tmp_path,
            "veh.toml",
            """
            scenario = "vehicular"
            description = "smaller fleet"

            [params]
            num_vehicles = 24

            [config]
            horizon = 40
            seed = 5
            """,
        )
        loaded = load_scenario_file(path)
        assert loaded.spec == ScenarioSpec.make("vehicular", {"num_vehicles": 24})
        assert loaded.source == str(path)
        cfg = loaded.config()
        assert cfg.horizon == 40 and cfg.seed == 5
        assert cfg.scenario == loaded.spec

    def test_json_round_trip(self, tmp_path):
        path = write(
            tmp_path,
            "sleep.json",
            json.dumps(
                {
                    "scenario": "sleep_mode",
                    "params": {"active_scns": 3},
                    "config": {"horizon": 25},
                }
            ),
        )
        loaded = load_scenario_file(path)
        assert loaded.spec.param_dict() == {"active_scns": 3}
        assert loaded.config().horizon == 25

    def test_kwarg_overrides_beat_file_config(self, tmp_path):
        path = write(
            tmp_path, "v.toml", 'scenario = "vehicular"\n[config]\nhorizon = 40\n'
        )
        assert load_scenario_file(path).config(horizon=7).horizon == 7

    def test_committed_example_files_load(self):
        from pathlib import Path

        scenario_dir = Path(__file__).resolve().parents[2] / "examples" / "scenarios"
        for path in sorted(scenario_dir.iterdir()):
            loaded = load_scenario_file(path)
            assert loaded.hash  # resolves against the current registry


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioConfigError, match="not found"):
            load_scenario_file(tmp_path / "nope.toml")

    def test_bad_suffix(self, tmp_path):
        path = write(tmp_path, "s.yaml", "scenario: vehicular")
        with pytest.raises(ScenarioConfigError, match="suffix"):
            load_scenario_file(path)

    def test_invalid_toml(self, tmp_path):
        path = write(tmp_path, "s.toml", "scenario = [unclosed")
        with pytest.raises(ScenarioConfigError, match="invalid TOML"):
            load_scenario_file(path)

    def test_invalid_json(self, tmp_path):
        path = write(tmp_path, "s.json", "{not json")
        with pytest.raises(ScenarioConfigError, match="invalid JSON"):
            load_scenario_file(path)

    def test_unknown_top_level_key(self, tmp_path):
        path = write(tmp_path, "s.toml", 'scenario = "vehicular"\nworkers = 4\n')
        with pytest.raises(ScenarioConfigError, match="workers"):
            load_scenario_file(path)

    def test_missing_scenario_name(self, tmp_path):
        path = write(tmp_path, "s.toml", "[params]\nx = 1\n")
        with pytest.raises(ScenarioConfigError, match="'scenario'"):
            load_scenario_file(path)

    def test_unknown_scenario_name(self, tmp_path):
        path = write(tmp_path, "s.toml", 'scenario = "warp_drive"\n')
        with pytest.raises(UnknownScenarioError, match="warp_drive"):
            load_scenario_file(path)

    def test_unknown_param(self, tmp_path):
        path = write(
            tmp_path, "s.toml", 'scenario = "vehicular"\n[params]\nwheels = 4\n'
        )
        with pytest.raises(scenarios.ScenarioError, match="wheels"):
            load_scenario_file(path)

    def test_ill_typed_param(self, tmp_path):
        path = write(
            tmp_path, "s.toml", 'scenario = "vehicular"\n[params]\nnum_vehicles = "x"\n'
        )
        with pytest.raises(scenarios.ScenarioError, match="expects"):
            load_scenario_file(path)

    def test_unknown_config_field(self, tmp_path):
        path = write(
            tmp_path, "s.toml", 'scenario = "vehicular"\n[config]\nwarp = 1\n'
        )
        with pytest.raises(ScenarioConfigError, match="warp"):
            load_scenario_file(path)

    def test_config_cannot_set_scenario(self, tmp_path):
        path = write(
            tmp_path, "s.toml", 'scenario = "vehicular"\n[config]\nscenario = "vr"\n'
        )
        with pytest.raises(ScenarioConfigError, match="scenario"):
            load_scenario_file(path)


class TestResolveScenario:
    def test_name_resolves_via_registry(self):
        loaded = resolve_scenario("vehicular")
        assert loaded.spec == ScenarioSpec.make("vehicular")
        assert loaded.source is None

    def test_file_and_name_share_hash(self, tmp_path):
        path = write(tmp_path, "v.toml", 'scenario = "vehicular"\n')
        assert resolve_scenario(path).hash == resolve_scenario("vehicular").hash

    def test_unknown_name(self):
        with pytest.raises(UnknownScenarioError):
            resolve_scenario("warp_drive")

    @pytest.mark.parametrize(
        "s, expected",
        [
            ("vehicular", False),
            ("x.toml", True),
            ("x.json", True),
            ("dir/x", True),
            ("dir\\x", True),
        ],
    )
    def test_looks_like_path(self, s, expected):
        assert looks_like_path(s) is expected
