"""End-to-end scenario runs: determinism gates, energy, censoring.

Every registered scenario must run through ``repro.api`` with trajectories
bit-identical across worker counts (serial vs process-parallel) and window
sizes (windowed vs per-slot) — the determinism contract of DESIGN.md §11.
"""

import numpy as np
import pytest

from repro import api, scenarios
from repro.scenarios.one_bit import OneBitFeedbackPolicy, censor_feedback
from repro.scenarios.wrappers import PolicyWrapper

# Tiny horizons keep the full cross-product affordable in CI.
ALL_SCENARIOS = (
    "mobility_blockage",
    "nonstationary_drift",
    "nonstationary_regime",
    "one_bit",
    "sleep_mode",
    "vehicular",
    "vr",
)
POLICIES = ("LFSC", "Random")
HORIZON = 24


def run_scenario(name, **overrides):
    overrides.setdefault("horizon", HORIZON)
    overrides.setdefault("workers", 1)
    return api.run(scenario=name, policies=POLICIES, **overrides)


def assert_results_equal(a, b):
    for name in POLICIES:
        np.testing.assert_array_equal(a[name].reward, b[name].reward)
        np.testing.assert_array_equal(a[name].violation_qos, b[name].violation_qos)
        np.testing.assert_array_equal(a[name].accepted, b[name].accepted)


class TestScenarioRuns:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_runs_and_attaches_spec(self, name):
        out = run_scenario(name)
        assert out.config.scenario.name == name
        for policy in POLICIES:
            assert out[policy].reward.shape == (HORIZON,)

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_serial_parallel_bit_equal(self, name):
        assert_results_equal(run_scenario(name), run_scenario(name, workers=2))

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_windowed_per_slot_bit_equal(self, name):
        assert_results_equal(run_scenario(name, window=8), run_scenario(name, window=0))

    def test_manifest_carries_scenario_hash(self):
        from repro.obs.manifest import build_manifest

        out = run_scenario("vehicular")
        manifest = build_manifest(kind="test", config=out.config)
        block = manifest["scenario"]
        assert block["name"] == "vehicular"
        assert block["hash"] == scenarios.scenario_hash(out.config.scenario)
        assert "error" not in block

    def test_manifest_none_without_scenario(self):
        from repro.obs.manifest import build_manifest

        assert build_manifest(kind="test", config=None)["scenario"] is None


class TestSleepMode:
    def test_energy_reported(self):
        out = run_scenario("sleep_mode")
        for policy in POLICIES:
            res = out[policy]
            assert res.extras["energy"].shape == (HORIZON,)
            summary = res.summary()
            assert summary["total_energy"] == pytest.approx(res.extras["energy"].sum())
            assert summary["energy_per_decision"] > 0.0

    def test_energy_matches_activation_budget(self):
        out = api.run(scenario="sleep_mode", policies=("Random",), horizon=10, workers=1)
        # Default params on the small preset's 8 SCNs: 5 awake at 1.0 each,
        # 3 asleep at 0.1 each, every slot.
        expected = 5 * 1.0 + 3 * 0.1
        np.testing.assert_allclose(out["Random"].extras["energy"], expected)

    def test_energy_metrics(self):
        from repro.metrics import energy_per_decision, energy_series, energy_summary

        res = run_scenario("sleep_mode")["LFSC"]
        series = energy_series(res, cumulative=False)
        np.testing.assert_array_equal(series, res.extras["energy"])
        assert energy_series(res)[-1] == pytest.approx(series.sum())
        summary = energy_summary(res)
        assert summary["total_energy"] == pytest.approx(series.sum())
        assert energy_per_decision(res) == pytest.approx(
            summary["energy_per_decision"]
        )

    def test_energy_metrics_require_energy_extras(self):
        from repro.metrics import energy_per_decision

        res = run_scenario("vehicular")["LFSC"]
        with pytest.raises(KeyError, match="sleep_mode"):
            energy_per_decision(res)

    def test_sleeping_scns_accept_nothing(self):
        out = api.run(scenario="sleep_mode", policies=("Random",), horizon=12, workers=1)
        accepted = out["Random"].accepted  # (T, M) per-slot accept counts
        # With m=5 of 8 SCNs awake, every slot has >= 3 SCNs accepting zero.
        assert (np.sort(accepted, axis=1)[:, :3] == 0).all()


class _RecordingPolicy(PolicyWrapper):
    """Forwards to the base policy while recording every feedback seen."""

    def __init__(self, base):
        super().__init__(base)
        self.seen = []

    def update(self, slot, feedback):
        self.seen.append(feedback)
        self.base.update(slot, feedback)


class TestOneBit:
    def test_censor_feedback_identity(self, rng):
        from repro.env.simulator import Assignment, SlotFeedback

        n = 16
        u = rng.random(n)
        v = (rng.random(n) < 0.7).astype(float)
        q = rng.uniform(0.5, 1.5, n)
        fb = SlotFeedback(
            assignment=Assignment(
                scn=rng.integers(0, 3, n), task=np.arange(n, dtype=np.int64)
            ),
            u=u,
            v=v,
            q=q,
            g=u * v / q,
        )
        censored = censor_feedback(fb)
        success = (fb.g > 0).astype(float)
        np.testing.assert_array_equal(censored.g, success)
        np.testing.assert_array_equal(censored.u, success)
        np.testing.assert_array_equal(censored.v, success)
        np.testing.assert_array_equal(censored.q, np.ones(n))
        # the compound-reward identity g = u*v/q survives censoring
        np.testing.assert_array_equal(
            censored.g, censored.u * censored.v / censored.q
        )
        assert censored.assignment is fb.assignment

    def test_policy_never_sees_raw_g(self):
        """The hard ISSUE gate: one-bit policies observe only {0, 1}."""
        from repro.env.simulator import Simulation
        from repro.experiments.runner import (
            build_channel,
            build_simulation,
            build_truth,
            make_policy,
        )

        loaded = scenarios.resolve_scenario("one_bit")
        cfg = loaded.config(horizon=20)
        sim = build_simulation(cfg)
        assert isinstance(sim, Simulation)
        truth = build_truth(cfg)
        policy = make_policy("LFSC", cfg, truth)
        assert isinstance(policy, OneBitFeedbackPolicy)
        # splice a recorder between the censoring wrapper and the base
        recorder = _RecordingPolicy(policy.base)
        spy = OneBitFeedbackPolicy(recorder)
        sim.run(spy, cfg.horizon)
        assert recorder.seen, "recorder never saw feedback"
        for fb in recorder.seen:
            assert set(np.unique(fb.g)) <= {0.0, 1.0}
            np.testing.assert_array_equal(fb.u, fb.g)
            np.testing.assert_array_equal(fb.v, fb.g)
            np.testing.assert_array_equal(fb.q, np.ones_like(fb.q))

    def test_one_bit_changes_learning_signal(self):
        censored = run_scenario("one_bit")
        clear = api.run(policies=POLICIES, horizon=HORIZON, seed=0, workers=1)
        # same environment randomness, different information: LFSC's
        # trajectory must actually differ under censoring
        assert not np.array_equal(censored["LFSC"].reward, clear["LFSC"].reward)
