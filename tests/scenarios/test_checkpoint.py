"""Scenario checkpoints: state round-trips and the fail-closed hash gate.

A checkpoint taken mid-run of a scenario session must resume bit-identically
— including mobility fleet state, channel state, and the sleep wrapper's
activation statistics — and must *refuse* to resume when the registry's
resolved ``(name, params)`` document no longer hashes to what the snapshot
recorded (DESIGN.md §11).
"""

import dataclasses

import numpy as np
import pytest

from repro import api
from repro.scenarios import registry as registry_mod
from repro.service.checkpoint import CheckpointFormatError
from repro.service.session import OnlineSession

SCENARIOS = ("vehicular", "sleep_mode", "one_bit", "mobility_blockage")
HORIZON = 16
SPLIT = 7


def straight_run(name):
    session = api.open_session(scenario=name, horizon=HORIZON, policy="LFSC")
    session.run(HORIZON)
    return session.result()


class TestResumeBitEquivalence:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_split_resume_matches_straight_run(self, name, tmp_path):
        reference = straight_run(name)

        session = api.open_session(scenario=name, horizon=HORIZON, policy="LFSC")
        session.run(SPLIT)
        path = tmp_path / f"{name}.ckpt"
        session.save(path)

        resumed = OnlineSession.from_checkpoint(path)
        resumed.run(HORIZON - SPLIT)
        result = resumed.result()

        np.testing.assert_array_equal(reference.reward, result.reward)
        np.testing.assert_array_equal(reference.violation_qos, result.violation_qos)
        np.testing.assert_array_equal(reference.accepted, result.accepted)
        for key, series in reference.extras.items():
            np.testing.assert_array_equal(series, result.extras[key])

    def test_sleep_energy_survives_resume(self, tmp_path):
        session = api.open_session(scenario="sleep_mode", horizon=HORIZON, policy="LFSC")
        session.run(SPLIT)
        path = tmp_path / "sleep.ckpt"
        session.save(path)
        resumed = OnlineSession.from_checkpoint(path)
        resumed.run(HORIZON - SPLIT)
        energy = resumed.result().extras["energy"]
        assert energy.shape == (HORIZON,)
        assert (energy > 0).all()  # the pre-split slots were not zeroed


class TestFailClosed:
    def _checkpoint(self, tmp_path, name="vehicular"):
        session = api.open_session(scenario=name, horizon=HORIZON, policy="LFSC")
        session.run(SPLIT)
        path = tmp_path / f"{name}.ckpt"
        session.save(path)
        return path

    def test_registry_default_drift_rejected(self, tmp_path, monkeypatch):
        path = self._checkpoint(tmp_path)
        entry = registry_mod._REGISTRY["vehicular"]
        tampered = dataclasses.replace(
            entry, defaults={**entry.defaults, "radius_km": 99.0}
        )
        monkeypatch.setitem(registry_mod._REGISTRY, "vehicular", tampered)
        with pytest.raises(CheckpointFormatError, match="hash mismatch"):
            OnlineSession.from_checkpoint(path)

    def test_unregistered_scenario_rejected(self, tmp_path, monkeypatch):
        path = self._checkpoint(tmp_path)
        monkeypatch.delitem(registry_mod._REGISTRY, "vehicular")
        with pytest.raises(CheckpointFormatError, match="vehicular"):
            OnlineSession.from_checkpoint(path)

    def test_untampered_checkpoint_accepted(self, tmp_path):
        path = self._checkpoint(tmp_path)
        session = OnlineSession.from_checkpoint(path)
        assert session.t == SPLIT

    def test_describe_checkpoint_reports_scenario(self, tmp_path):
        from repro import scenarios
        from repro.service import describe_checkpoint

        path = self._checkpoint(tmp_path)
        info = describe_checkpoint(path)
        block = info["scenario"]
        assert block["name"] == "vehicular"
        assert block["hash"] == scenarios.scenario_hash(
            scenarios.ScenarioSpec.make("vehicular")
        )

    def test_scenario_free_checkpoint_still_resumes(self, tmp_path):
        session = api.open_session(scale="tiny", policy="LFSC")
        session.run(5)
        path = tmp_path / "plain.ckpt"
        session.save(path)
        resumed = OnlineSession.from_checkpoint(path)
        assert resumed.t == 5
        assert resumed.config.scenario is None
