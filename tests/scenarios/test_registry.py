"""Tests for repro.scenarios.registry — entries, params, hashing."""

import dataclasses

import pytest

from repro import scenarios
from repro.scenarios import (
    Scenario,
    ScenarioEnv,
    ScenarioError,
    ScenarioSpec,
    UnknownScenarioError,
)
from repro.scenarios import registry as registry_mod

BUILTINS = {
    "paper",
    "mobility_blockage",
    "vr",
    "nonstationary_drift",
    "nonstationary_regime",
    "vehicular",
    "sleep_mode",
    "one_bit",
}


class TestRegistryLookup:
    def test_builtins_registered(self):
        assert BUILTINS <= set(scenarios.names())

    def test_names_sorted(self):
        names = scenarios.names()
        assert names == sorted(names)

    def test_get_round_trip(self):
        for name in BUILTINS:
            assert scenarios.get(name).name == name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownScenarioError, match="vehicular"):
            scenarios.get("definitely_not_a_scenario")

    def test_list_filters_by_tag(self):
        mobile = scenarios.list_scenarios(tag="mobility")
        assert {s.name for s in mobile} == {"mobility_blockage", "vehicular"}
        assert scenarios.list_scenarios(tag="no_such_tag") == []

    def test_duplicate_register_fails_without_replace(self):
        scenario = scenarios.get("paper")
        with pytest.raises(ScenarioError, match="already registered"):
            scenarios.register(scenario)
        # replace=True is how builtins stay idempotent
        scenarios.register(scenario, replace=True)

    def test_register_rejects_bad_entries(self):
        with pytest.raises(ScenarioError):
            Scenario(name="", description="x", config=lambda p: None)
        with pytest.raises(ScenarioError):
            Scenario(name="x", description="x", config=None)

    def test_describe_is_json_safe(self):
        import json

        info = scenarios.describe("sleep_mode")
        json.dumps(info)  # must not raise
        assert info["name"] == "sleep_mode"
        assert info["policy_wrapper"] is True
        assert info["env_overrides"] is False
        assert set(info["defaults"]) == {
            "active_scns",
            "explore",
            "active_power",
            "sleep_power",
        }


class TestResolveParams:
    def test_defaults_when_no_overrides(self):
        scenario = scenarios.get("vehicular")
        assert scenarios.resolve_params(scenario) == dict(scenario.defaults)

    def test_override_applies(self):
        scenario = scenarios.get("vehicular")
        params = scenarios.resolve_params(scenario, {"num_vehicles": 20})
        assert params["num_vehicles"] == 20
        assert params["turn_prob"] == scenario.defaults["turn_prob"]

    def test_unknown_param_fails(self):
        scenario = scenarios.get("vehicular")
        with pytest.raises(ScenarioError, match="no parameter"):
            scenarios.resolve_params(scenario, {"warp_speed": 9})

    def test_type_mismatch_fails(self):
        scenario = scenarios.get("vehicular")
        with pytest.raises(ScenarioError, match="expects"):
            scenarios.resolve_params(scenario, {"num_vehicles": "many"})

    def test_int_accepted_for_float_default(self):
        scenario = scenarios.get("vehicular")
        params = scenarios.resolve_params(scenario, {"area_km": 5})
        assert params["area_km"] == 5


class TestScenarioHash:
    def test_stable_across_calls(self):
        spec = ScenarioSpec.make("vehicular")
        assert scenarios.scenario_hash(spec) == scenarios.scenario_hash(spec)

    def test_explicit_defaults_hash_like_implicit(self):
        scenario = scenarios.get("vehicular")
        implicit = ScenarioSpec.make("vehicular")
        explicit = ScenarioSpec.make("vehicular", dict(scenario.defaults))
        assert scenarios.scenario_hash(implicit) == scenarios.scenario_hash(explicit)

    def test_param_override_moves_hash(self):
        base = scenarios.scenario_hash(ScenarioSpec.make("vehicular"))
        other = scenarios.scenario_hash(
            ScenarioSpec.make("vehicular", {"num_vehicles": 7})
        )
        assert base != other

    def test_registry_default_drift_moves_hash(self, monkeypatch):
        base = scenarios.scenario_hash(ScenarioSpec.make("vehicular"))
        entry = registry_mod._REGISTRY["vehicular"]
        tampered = dataclasses.replace(
            entry, defaults={**entry.defaults, "radius_km": 99.0}
        )
        monkeypatch.setitem(registry_mod._REGISTRY, "vehicular", tampered)
        assert scenarios.scenario_hash(ScenarioSpec.make("vehicular")) != base


class TestBuildHooks:
    def test_config_for_attaches_spec(self):
        spec = ScenarioSpec.make("vehicular")
        cfg = scenarios.config_for(spec, horizon=12)
        assert cfg.scenario == spec
        assert cfg.horizon == 12
        assert cfg.num_scns == 9

    def test_build_env_returns_overrides(self):
        from repro.env.geometry import TrajectoryMobility

        cfg = scenarios.config_for(ScenarioSpec.make("vehicular", {"num_vehicles": 12}))
        env = scenarios.build_env(cfg)
        assert isinstance(env, ScenarioEnv)
        assert isinstance(env.workload.coverage_model, TrajectoryMobility)
        assert env.workload.coverage_model.num_vehicles == 12
        assert env.truth is None and env.channel is None

    def test_build_env_empty_without_scenario(self):
        from repro.experiments.runner import ExperimentConfig

        env = scenarios.build_env(ExperimentConfig.tiny())
        assert env == ScenarioEnv()

    def test_wrap_policy_identity_without_wrapper(self):
        cfg = scenarios.config_for(ScenarioSpec.make("paper"))
        sentinel = object()
        assert scenarios.wrap_policy(sentinel, cfg) is sentinel

    def test_wrap_policy_applies_scenario_wrapper(self):
        from repro.experiments.runner import build_truth, make_policy
        from repro.scenarios.sleep import SleepModePolicy

        cfg = scenarios.config_for(
            ScenarioSpec.make("sleep_mode", {"active_scns": 3}), horizon=10
        )
        policy = make_policy("Random", cfg, build_truth(cfg))
        assert isinstance(policy, SleepModePolicy)
        assert policy.active_scns == 3
        assert policy.name == "Random"  # RNG stream name preserved
