"""Property tests for the frozen replication stream contract (utils/rng.py).

The contract: replication ``k`` of base seed ``s`` draws its randomness from
``SeedSequence(entropy=s, spawn_key=(REPLICATION_SPAWN_KEY, k))``, reduced to
one ``uint64`` integer seed.  These tests enforce the three guarantees the
process-parallel replication harness rests on:

1. the mapping ``(s, k) -> seed`` is a pure function — independent of spawn
   order, worker count, batch size, and any other streams drawn first;
2. distinct replications (and distinct base seeds) get statistically
   independent streams — no collisions, no cross-correlation;
3. the mapping is **frozen** — golden values pin it, because changing it
   silently invalidates every committed golden summary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import (
    REPLICATION_SPAWN_KEY,
    RngFactory,
    replication_seed,
    replication_seed_sequence,
    replication_seeds,
)

BASE_SEEDS = st.integers(min_value=0, max_value=2**63 - 1)
INDICES = st.integers(min_value=0, max_value=10_000)


class TestFrozenMapping:
    """Golden values: the contract must never change."""

    def test_frozen_seeds_base0(self):
        assert replication_seeds(0, 4) == [
            13046892107959339253,
            12439981908815758231,
            12865545366157553917,
            5546455963584761057,
        ]

    def test_frozen_seeds_base42(self):
        assert replication_seeds(42, 3) == [
            2839679240473482096,
            13853241676780871786,
            12206153340884933074,
        ]

    def test_frozen_spawn_key_constant(self):
        assert REPLICATION_SPAWN_KEY == 0x5EED

    def test_seed_sequence_structure(self):
        ss = replication_seed_sequence(7, 3)
        assert ss.entropy == 7
        assert tuple(ss.spawn_key) == (REPLICATION_SPAWN_KEY, 3)


class TestPureFunction:
    @given(base=BASE_SEEDS, k=INDICES)
    @settings(max_examples=50, deadline=None)
    def test_mapping_is_deterministic(self, base, k):
        assert replication_seed(base, k) == replication_seed(base, k)

    @given(base=BASE_SEEDS, n=st.integers(min_value=2, max_value=16))
    @settings(max_examples=25, deadline=None)
    def test_independent_of_batch_size(self, base, n):
        # Asking for n seeds or deriving each index alone gives the same
        # mapping — the k-th seed never depends on how many were requested.
        batch = replication_seeds(base, n)
        singles = [replication_seed(base, k) for k in range(n)]
        assert batch == singles

    @given(base=BASE_SEEDS, k=INDICES)
    @settings(max_examples=25, deadline=None)
    def test_independent_of_other_streams_drawn_first(self, base, k):
        # Drawing unrelated named streams (as a worker would at startup)
        # must not perturb the replication mapping.
        expected = replication_seed(base, k)
        factory = RngFactory(base)
        factory.get("workload").random(8)
        factory.get("policy.LFSC").random(8)
        assert replication_seed(base, k) == expected

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            replication_seed(0, -1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            replication_seeds(0, -1)


class TestIsolation:
    @given(base=BASE_SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_no_collisions_within_base(self, base):
        seeds = replication_seeds(base, 64)
        assert len(set(seeds)) == 64

    @given(base=BASE_SEEDS, k=INDICES)
    @settings(max_examples=25, deadline=None)
    def test_no_collision_with_additive_neighbour(self, base, k):
        # The classic failure of `base + k` seeding: replication k of base s
        # collides with replication 0 of base s + k.  The contract must not.
        assert replication_seed(base, k) != replication_seed(base + k, 0) or k == 0

    def test_streams_uncorrelated_across_replications(self):
        # Pearson correlation between the uniform streams of neighbouring
        # replications stays at noise level (|r| < 4/sqrt(n)).
        n = 4096
        draws = [
            np.random.default_rng(replication_seed(0, k)).random(n) for k in range(6)
        ]
        bound = 4.0 / np.sqrt(n)
        for i in range(len(draws)):
            for j in range(i + 1, len(draws)):
                r = np.corrcoef(draws[i], draws[j])[0, 1]
                assert abs(r) < bound, f"streams {i},{j} correlated: r={r:.4f}"

    def test_streams_uncorrelated_across_base_seeds(self):
        n = 4096
        a = np.random.default_rng(replication_seed(0, 0)).random(n)
        b = np.random.default_rng(replication_seed(1, 0)).random(n)
        assert abs(np.corrcoef(a, b)[0, 1]) < 4.0 / np.sqrt(n)


class TestFactorySpawnKeyComposition:
    def test_spawned_roots_do_not_alias_named_streams(self):
        # Two factories rooted at different replication children must give
        # different "workload" streams even though the entropy matches.
        fac_a = RngFactory(replication_seed_sequence(0, 0))
        fac_b = RngFactory(replication_seed_sequence(0, 1))
        a = fac_a.get("workload").random(16)
        b = fac_b.get("workload").random(16)
        assert not np.array_equal(a, b)

    def test_int_rooted_factory_unchanged(self):
        # Backward compatibility: an int root has an empty spawn_key, so the
        # name -> stream mapping is exactly the historical one.
        fac = RngFactory(0)
        ref = np.random.default_rng(
            np.random.SeedSequence(entropy=0, spawn_key=tuple(b"workload"))
        )
        np.testing.assert_array_equal(fac.get("workload").random(8), ref.random(8))
