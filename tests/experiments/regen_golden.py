"""Regenerate the committed golden replication summary.

Run after an *intentional* change to simulation semantics, the frozen seed
contract, or the golden scenario constants::

    PYTHONPATH=src python -m tests.experiments.regen_golden

Then review the numeric diff of ``tests/experiments/golden/replication_tiny.json``
like any other code change — every delta is a learning-curve shift that
``test_golden_summaries.py`` would otherwise have flagged.
"""

from __future__ import annotations

from tests.experiments.goldens import GOLDEN_PATH, compute_golden, write_golden


def main() -> None:
    report = compute_golden(workers=1)
    write_golden(report)
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
