"""Statistical regression against the committed golden summaries.

Recomputes the golden replication scenario (tiny config, frozen
contract-derived seeds) and compares every recorded scalar — per-seed and
aggregate — against ``golden/replication_tiny.json`` with tight tolerances.
Runs are bit-deterministic given the seeds, so the tolerance only absorbs
cross-platform libm/BLAS noise; any genuine learning-curve shift from a
kernel or engine refactor lands orders of magnitude above it.

If a change is *intentional*, regenerate with
``PYTHONPATH=src python -m tests.experiments.regen_golden`` and commit the
reviewed numeric diff.
"""

from __future__ import annotations

import math

import pytest

from tests.experiments.goldens import (
    GOLDEN_PATH,
    GOLDEN_POLICIES,
    compute_golden,
    load_golden,
)

RTOL = 1e-6
ATOL = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH} — run `PYTHONPATH=src python -m "
        "tests.experiments.regen_golden`"
    )
    return load_golden()


@pytest.fixture(scope="module")
def recomputed() -> dict:
    return compute_golden(workers=1)


def _assert_close(actual: float, expected: float, where: str) -> None:
    assert math.isclose(actual, expected, rel_tol=RTOL, abs_tol=ATOL), (
        f"{where}: {actual!r} != golden {expected!r} "
        f"(drift {actual - expected:+.3e}) — a learning curve moved; if "
        "intentional, regenerate the golden file and review the diff"
    )


def test_schema_and_scenario_frozen(golden):
    assert golden["schema"] == "golden_replication/v1"
    assert golden["config"]["base_seed"] == 0
    assert golden["config"]["replications"] == 3
    assert set(golden["policies"]) == set(GOLDEN_POLICIES)


def test_seeds_follow_frozen_contract(golden, recomputed):
    assert golden["seeds"] == recomputed["seeds"]


@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
def test_per_seed_scalars_match_golden(golden, recomputed, policy):
    gold_runs = golden["policies"][policy]["per_seed"]
    new_runs = recomputed["policies"][policy]["per_seed"]
    assert len(gold_runs) == len(new_runs)
    for k, (gold, new) in enumerate(zip(gold_runs, new_runs)):
        assert gold["seed"] == new["seed"]
        for metric, expected in gold.items():
            if metric == "seed":
                continue
            _assert_close(new[metric], expected, f"{policy}[seed {gold['seed']}].{metric}")


@pytest.mark.parametrize("policy", GOLDEN_POLICIES)
def test_mean_curves_match_golden(golden, recomputed, policy):
    gold_mean = golden["policies"][policy]["mean"]
    new_mean = recomputed["policies"][policy]["mean"]
    assert set(gold_mean) == set(new_mean)
    for metric, expected in gold_mean.items():
        _assert_close(new_mean[metric], expected, f"{policy}.mean.{metric}")


def test_golden_orderings_still_hold(golden):
    """The paper-shape sanity floor: goldens themselves stay meaningful."""
    mean = {p: golden["policies"][p]["mean"] for p in GOLDEN_POLICIES}
    assert mean["LFSC"]["final_regret"] < mean["Random"]["final_regret"]
    assert mean["Random"]["total_reward"] == min(
        m["total_reward"] for m in mean.values()
    )
