"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.scale == "small"
        assert "LFSC" in args.policies

    def test_common_flags_after_subcommand(self):
        args = build_parser().parse_args(["fig2a", "--horizon", "50", "--plot"])
        assert args.horizon == 50
        assert args.plot

    def test_fig3_fractions(self):
        args = build_parser().parse_args(["fig3", "--alpha-fractions", "0.5", "0.9"])
        assert args.alpha_fractions == [0.5, 0.9]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestMain:
    def test_run_prints_table(self, capsys):
        rc = main(["run", "--horizon", "20", "--workers", "1", "--policies", "Random", "LFSC"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Random" in out and "LFSC" in out
        assert "total_reward" in out

    def test_run_with_plot(self, capsys):
        rc = main(
            ["run", "--horizon", "15", "--workers", "1", "--policies", "Random", "--plot"]
        )
        assert rc == 0
        assert "a=Random" in capsys.readouterr().out

    def test_run_with_save(self, capsys, tmp_path):
        base = tmp_path / "cli_run"
        rc = main(
            [
                "run",
                "--horizon",
                "15",
                "--workers",
                "1",
                "--policies",
                "Random",
                "--save",
                str(base),
            ]
        )
        assert rc == 0
        assert base.with_suffix(".npz").exists()
        from repro.experiments.io import load_results

        loaded = load_results(base)
        assert "Random" in loaded

    def test_fig2a_small(self, capsys):
        rc = main(["fig2a", "--horizon", "15", "--workers", "1"])
        assert rc == 0
        assert "reward_vs_oracle" in capsys.readouterr().out

    def test_ratio_small(self, capsys):
        rc = main(["ratio", "--horizon", "15", "--workers", "1"])
        assert rc == 0
        assert "performance_ratio" in capsys.readouterr().out

    def test_seed_changes_results(self, capsys):
        main(["run", "--horizon", "15", "--workers", "1", "--policies", "Random", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["run", "--horizon", "15", "--workers", "1", "--policies", "Random", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2


class TestReportCommand:
    def test_report_writes_markdown(self, capsys, tmp_path):
        out = tmp_path / "rep.md"
        rc = main(
            ["report", "--horizon", "15", "--workers", "1", "--out", str(out)]
        )
        assert rc == 0
        text = out.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "Shape-check summary" in text

    def test_report_emits_manifest_next_to_out(self, capsys, tmp_path):
        import json

        out = tmp_path / "rep.md"
        rc = main(["report", "--horizon", "15", "--workers", "1", "--out", str(out)])
        assert rc == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["kind"] == "report"
        assert manifest["config"]["horizon"] == 15

    def test_ablations_single_study(self, capsys):
        rc = main(["ablations", "--horizon", "15", "--workers", "1", "--study", "lagrangian"])
        assert rc == 0
        assert "LFSC-noLagrangian" in capsys.readouterr().out


class TestObservabilityCommands:
    def _run_with_trace(self, tmp_path, extra=()):
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "run",
                "--horizon",
                "12",
                "--workers",
                "1",
                "--policies",
                "LFSC",
                "--trace",
                str(trace),
                *extra,
            ]
        )
        assert rc == 0
        return trace

    def test_trace_flag_records_every_slot(self, capsys, tmp_path):
        from repro.obs.trace import read_trace, validate_record

        trace = self._run_with_trace(tmp_path)
        records = read_trace(trace)
        assert [r["t"] for r in records] == list(range(12))
        for r in records:
            validate_record(r)

    def test_trace_sample_thins_records(self, capsys, tmp_path):
        from repro.obs.trace import read_trace

        trace = self._run_with_trace(tmp_path, extra=["--trace-sample", "4"])
        assert [r["t"] for r in read_trace(trace)] == [0, 4, 8]

    def test_trace_subcommand_summarizes(self, capsys, tmp_path):
        trace = self._run_with_trace(tmp_path)
        capsys.readouterr()
        rc = main(["trace", str(trace), "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "12 records" in out
        assert "sim.select" in out  # span table present

    def test_trace_subcommand_reports_empty_file(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["trace", str(empty)])
        assert rc == 0
        assert "empty trace" in capsys.readouterr().out

    def test_manifest_dir_flag(self, capsys, tmp_path):
        import json

        rc = main(
            [
                "run",
                "--horizon",
                "12",
                "--workers",
                "1",
                "--policies",
                "Random",
                "--manifest-dir",
                str(tmp_path / "mdir"),
            ]
        )
        assert rc == 0
        manifest = json.loads((tmp_path / "mdir" / "manifest.json").read_text())
        assert manifest["kind"] == "run"
        assert manifest["config"]["seed"] is not None

    def test_save_emits_sidecar_manifest(self, capsys, tmp_path):
        import json

        base = tmp_path / "saved"
        rc = main(
            [
                "run",
                "--horizon",
                "12",
                "--workers",
                "1",
                "--policies",
                "Random",
                "--save",
                str(base),
            ]
        )
        assert rc == 0
        manifest = json.loads(base.with_suffix(".manifest.json").read_text())
        assert manifest["kind"] == "results"
        assert manifest["policies"] == ["Random"]

    def test_replicate_emits_manifest(self, capsys, tmp_path):
        import json

        mdir = tmp_path / "repl"
        rc = main(
            [
                "replicate",
                "--horizon",
                "12",
                "--workers",
                "1",
                "--seeds",
                "2",
                "--policies",
                "Random",
                "--manifest-dir",
                str(mdir),
            ]
        )
        assert rc == 0
        manifest = json.loads((mdir / "manifest.json").read_text())
        assert manifest["kind"] == "replication"
        assert len(manifest["seeds"]) == 2
        assert manifest["engine"] in ("batched", "reference")

    def test_traced_run_matches_untraced(self, capsys, tmp_path):
        # The CLI trace path must not perturb results (bit-identity).
        main(["run", "--horizon", "12", "--workers", "1", "--policies", "LFSC"])
        plain = capsys.readouterr().out
        self._run_with_trace(tmp_path)
        traced = capsys.readouterr().out
        assert plain.splitlines()[:3] == traced.splitlines()[:3]


class TestUnifiedOptions:
    """The shared option group (declared once) and its deprecated aliases."""

    RUN_COMMANDS = ("run", "fig2a", "fig2b", "fig2-violations", "ratio",
                    "fig3", "fig4", "ablations", "report", "replicate")

    def test_every_run_subcommand_shares_the_group(self):
        parser = build_parser()
        for command in self.RUN_COMMANDS:
            args = parser.parse_args([command])
            for dest in ("window", "engine", "transport", "trace",
                         "trace_sample", "manifest_dir", "no_oracle_cache"):
                assert hasattr(args, dest), f"{command} lacks --{dest}"

    def test_trace_subcommand_opts_out(self):
        args = build_parser().parse_args(["trace", "x.jsonl"])
        assert not hasattr(args, "window")

    def test_engine_flows_into_config(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(["run", "--engine", "reference"])
        assert _config_from_args(args).lfsc_config().engine == "reference"

    def test_no_oracle_cache_flows_into_config(self):
        from repro.cli import _config_from_args

        args = build_parser().parse_args(["run", "--no-oracle-cache"])
        assert _config_from_args(args).oracle_cache is False
        args = build_parser().parse_args(["run"])
        assert _config_from_args(args).oracle_cache is True

    def test_deprecated_aliases_forward_with_note(self, capsys):
        args = build_parser().parse_args(
            ["run", "--trace-path", "t.jsonl", "--sample-every", "3",
             "--result-transport", "pickle"]
        )
        err = capsys.readouterr().err
        assert args.trace == "t.jsonl"
        assert args.trace_sample == 3
        assert args.transport == "pickle"
        for note in ("--trace-path", "--sample-every", "--result-transport"):
            assert f"{note} is deprecated" in err

    def test_aliases_hidden_from_help(self):
        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf), pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--help"])
        text = buf.getvalue()
        assert "--trace-path" not in text
        assert "--result-transport" not in text
        assert "--trace" in text and "--transport" in text

    def test_gz_trace_via_cli(self, capsys, tmp_path):
        from repro.obs.trace import read_trace

        trace = tmp_path / "trace.jsonl.gz"
        rc = main(
            ["run", "--horizon", "8", "--workers", "1", "--policies", "Random",
             "--trace", str(trace)]
        )
        assert rc == 0
        with trace.open("rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert [r["t"] for r in read_trace(trace)] == list(range(8))
