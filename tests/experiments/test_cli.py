"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.scale == "small"
        assert "LFSC" in args.policies

    def test_common_flags_after_subcommand(self):
        args = build_parser().parse_args(["fig2a", "--horizon", "50", "--plot"])
        assert args.horizon == 50
        assert args.plot

    def test_fig3_fractions(self):
        args = build_parser().parse_args(["fig3", "--alpha-fractions", "0.5", "0.9"])
        assert args.alpha_fractions == [0.5, 0.9]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestMain:
    def test_run_prints_table(self, capsys):
        rc = main(["run", "--horizon", "20", "--workers", "1", "--policies", "Random", "LFSC"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Random" in out and "LFSC" in out
        assert "total_reward" in out

    def test_run_with_plot(self, capsys):
        rc = main(
            ["run", "--horizon", "15", "--workers", "1", "--policies", "Random", "--plot"]
        )
        assert rc == 0
        assert "a=Random" in capsys.readouterr().out

    def test_run_with_save(self, capsys, tmp_path):
        base = tmp_path / "cli_run"
        rc = main(
            [
                "run",
                "--horizon",
                "15",
                "--workers",
                "1",
                "--policies",
                "Random",
                "--save",
                str(base),
            ]
        )
        assert rc == 0
        assert base.with_suffix(".npz").exists()
        from repro.experiments.io import load_results

        loaded = load_results(base)
        assert "Random" in loaded

    def test_fig2a_small(self, capsys):
        rc = main(["fig2a", "--horizon", "15", "--workers", "1"])
        assert rc == 0
        assert "reward_vs_oracle" in capsys.readouterr().out

    def test_ratio_small(self, capsys):
        rc = main(["ratio", "--horizon", "15", "--workers", "1"])
        assert rc == 0
        assert "performance_ratio" in capsys.readouterr().out

    def test_seed_changes_results(self, capsys):
        main(["run", "--horizon", "15", "--workers", "1", "--policies", "Random", "--seed", "1"])
        out1 = capsys.readouterr().out
        main(["run", "--horizon", "15", "--workers", "1", "--policies", "Random", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert out1 != out2


class TestReportCommand:
    def test_report_writes_markdown(self, capsys, tmp_path):
        out = tmp_path / "rep.md"
        rc = main(
            ["report", "--horizon", "15", "--workers", "1", "--out", str(out)]
        )
        assert rc == 0
        text = out.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "Shape-check summary" in text

    def test_ablations_single_study(self, capsys):
        rc = main(["ablations", "--horizon", "15", "--workers", "1", "--study", "lagrangian"])
        assert rc == 0
        assert "LFSC-noLagrangian" in capsys.readouterr().out
