"""Tests for the Pareto operating-curve tooling."""

import numpy as np
import pytest

from repro.experiments.pareto import dominates, lfsc_operating_curve, pareto_front
from repro.experiments.runner import ExperimentConfig


class TestDominates:
    def test_strictly_better(self):
        assert dominates((10.0, 1.0), (5.0, 2.0))

    def test_equal_not_dominating(self):
        assert not dominates((5.0, 1.0), (5.0, 1.0))

    def test_tradeoff_not_dominating(self):
        assert not dominates((10.0, 5.0), (5.0, 1.0))
        assert not dominates((5.0, 1.0), (10.0, 5.0))

    def test_weak_in_one_coordinate(self):
        assert dominates((10.0, 1.0), (10.0, 2.0))
        assert dominates((10.0, 1.0), (9.0, 1.0))


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [0]

    def test_dominated_point_excluded(self):
        pts = [(10.0, 1.0), (5.0, 2.0), (8.0, 0.5)]
        front = pareto_front(pts)
        assert 1 not in front
        assert set(front) == {0, 2}

    def test_chain(self):
        pts = [(10.0, 10.0), (8.0, 5.0), (6.0, 2.0), (4.0, 1.0)]
        assert set(pareto_front(pts)) == {0, 1, 2, 3}

    def test_front_sorted_by_reward(self):
        pts = [(4.0, 1.0), (10.0, 10.0), (8.0, 5.0)]
        front = pareto_front(pts)
        rewards = [pts[i][0] for i in front]
        assert rewards == sorted(rewards, reverse=True)


class TestOperatingCurve:
    @pytest.fixture(scope="class")
    def output(self):
        cfg = ExperimentConfig.tiny(horizon=40)
        return lfsc_operating_curve(
            cfg, lambda_caps=(0.5, 10.0), baselines=("Random",)
        )

    def test_curve_points_present(self, output):
        names = {r["policy"] for r in output.rows}
        assert "LFSC(λmax=0.5)" in names
        assert "LFSC(λmax=10)" in names
        assert "Random" in names

    def test_series_shapes(self, output):
        assert output.series["curve_reward"].shape == (2,)
        assert output.series["curve_violations"].shape == (2,)

    def test_front_marked(self, output):
        marks = [r["on_front"] for r in output.rows]
        assert "yes" in marks

    def test_some_lfsc_point_dominates_random(self, output):
        random_pt = next(
            (float(r["total_reward"]), float(r["total_violations"]))
            for r in output.rows
            if r["policy"] == "Random"
        )
        lfsc_pts = [
            (float(r["total_reward"]), float(r["total_violations"]))
            for r in output.rows
            if str(r["policy"]).startswith("LFSC")
        ]
        assert any(dominates(p, random_pt) for p in lfsc_pts)
