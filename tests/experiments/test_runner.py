"""Tests for repro.experiments.runner — configs and the comparison runner."""

import numpy as np
import pytest

from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    build_simulation,
    build_truth,
    build_workload,
    make_policy,
    run_experiment,
)


class TestExperimentConfig:
    def test_paper_preset_matches_section5(self):
        cfg = ExperimentConfig.paper()
        assert cfg.num_scns == 30
        assert cfg.capacity == 20
        assert cfg.alpha == 15.0
        assert cfg.beta == 27.0
        assert (cfg.k_min, cfg.k_max) == (35, 100)
        assert cfg.horizon == 10_000
        assert cfg.parts == 3  # three categories per dimension

    def test_small_preset_preserves_ratios(self):
        paper, small = ExperimentConfig.paper(), ExperimentConfig.small()
        assert small.alpha / small.capacity == pytest.approx(
            paper.alpha / paper.capacity
        )
        assert small.beta / small.capacity == pytest.approx(
            paper.beta / paper.capacity
        )

    def test_with_overrides(self):
        cfg = ExperimentConfig.small(alpha=3.0)
        assert cfg.alpha == 3.0

    def test_lfsc_config_defaults_to_theorem(self):
        cfg = ExperimentConfig.small()
        lfsc = cfg.lfsc_config()
        assert 0 < lfsc.gamma <= 1

    def test_lfsc_config_explicit_override(self):
        from repro.core.config import LFSCConfig

        override = LFSCConfig(gamma=0.42)
        cfg = ExperimentConfig.small(lfsc=override)
        assert cfg.lfsc_config().gamma == 0.42

    def test_network_built_from_fields(self):
        net = ExperimentConfig.tiny().network()
        assert net.num_scns == 3

    def test_invalid_oracle_mode(self):
        with pytest.raises(ValueError):
            ExperimentConfig.small(oracle_mode="bogus")


class TestBuilders:
    def test_build_truth_dimensions(self):
        cfg = ExperimentConfig.tiny()
        truth = build_truth(cfg)
        assert truth.num_scns == cfg.num_scns
        assert truth.mu_u.shape == (3, cfg.cells_per_dim**cfg.dims)

    def test_build_truth_deterministic(self):
        cfg = ExperimentConfig.tiny()
        np.testing.assert_array_equal(build_truth(cfg).mu_u, build_truth(cfg).mu_u)

    def test_build_workload(self):
        wl = build_workload(ExperimentConfig.tiny())
        assert wl.num_scns == 3

    def test_build_simulation(self):
        sim = build_simulation(ExperimentConfig.tiny())
        assert sim.network.num_scns == 3

    @pytest.mark.parametrize("name", DEFAULT_POLICIES + ("eps-greedy", "thompson", "Oracle-unconstrained"))
    def test_make_policy_all_names(self, name):
        cfg = ExperimentConfig.tiny()
        policy = make_policy(name, cfg, build_truth(cfg))
        assert hasattr(policy, "select")

    def test_make_policy_unknown(self):
        cfg = ExperimentConfig.tiny()
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("nope", cfg, build_truth(cfg))


class TestRunExperiment:
    def test_runs_all_policies_on_shared_workload(self):
        cfg = ExperimentConfig.tiny(horizon=20)
        res = run_experiment(cfg, ("Oracle", "LFSC", "Random"))
        assert set(res) == {"Oracle", "LFSC", "Random"}
        for r in res.values():
            assert r.horizon == 20

    def test_serial_and_parallel_agree(self):
        cfg = ExperimentConfig.tiny(horizon=15)
        serial = run_experiment(cfg, ("Random", "vUCB"), workers=1)
        parallel = run_experiment(cfg, ("Random", "vUCB"), workers=2)
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].reward, parallel[name].reward
            )

    def test_repeatable(self):
        cfg = ExperimentConfig.tiny(horizon=15)
        a = run_experiment(cfg, ("LFSC",))
        b = run_experiment(cfg, ("LFSC",))
        np.testing.assert_array_equal(a["LFSC"].reward, b["LFSC"].reward)

    def test_different_seed_changes_workload(self):
        a = run_experiment(ExperimentConfig.tiny(horizon=15, seed=0), ("Random",))
        b = run_experiment(ExperimentConfig.tiny(horizon=15, seed=1), ("Random",))
        assert not np.array_equal(a["Random"].reward, b["Random"].reward)
