"""Tests for replication statistics and the report generator."""

import numpy as np
import pytest

from repro.experiments.figures import fig2a_cumulative_reward
from repro.experiments.replication import (
    ReplicatedSummary,
    replicate,
    replication_rows,
)
from repro.experiments.report import (
    ShapeCheck,
    evaluate_shapes,
    render_report,
    standard_checks,
)
from repro.experiments.runner import ExperimentConfig, run_experiment

CFG = ExperimentConfig.tiny(horizon=25)


class TestReplicate:
    def test_aggregates_across_seeds(self):
        agg = replicate(CFG, ("Random",), seeds=3)
        summary = agg["Random"]["total_reward"]
        assert summary.n == 3
        assert summary.std >= 0.0
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_explicit_seed_list(self):
        agg = replicate(CFG, ("Random",), seeds=[7, 8])
        assert agg["Random"]["total_reward"].n == 2

    def test_single_seed_zero_width(self):
        agg = replicate(CFG, ("Random",), seeds=1)
        s = agg["Random"]["total_reward"]
        assert s.half_width == 0.0

    def test_mean_matches_manual(self):
        agg = replicate(CFG, ("Random",), seeds=[0, 1])
        manual = []
        for seed in (0, 1):
            res = run_experiment(CFG.with_overrides(seed=seed), ("Random",))
            manual.append(res["Random"].total_reward)
        assert agg["Random"]["total_reward"].mean == pytest.approx(np.mean(manual))

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            replicate(CFG, ("Random",), seeds=2, confidence=1.5)

    def test_rows_formatting(self):
        agg = replicate(CFG, ("Random",), seeds=2)
        rows = replication_rows(agg)
        assert rows[0]["policy"] == "Random"
        assert "±" in rows[0]["total_reward"]


class TestReplicatedSummary:
    def test_formatted(self):
        s = ReplicatedSummary("m", "p", mean=10.0, std=1.0, ci_low=9.0, ci_high=11.0, n=3)
        assert s.formatted() == "10.0 ± 1.0"
        assert s.half_width == 1.0


class TestReport:
    @pytest.fixture(scope="class")
    def results(self):
        return run_experiment(CFG, ("Oracle", "LFSC", "vUCB", "Random"))

    def test_standard_checks_cover_claims(self, results):
        checks = standard_checks(results)
        experiments = {c.experiment for c in checks}
        assert {"E1", "E3", "E7"} <= experiments
        assert all(isinstance(c.passed, bool) for c in checks)

    def test_standard_checks_need_oracle_and_lfsc(self, results):
        assert standard_checks({"Random": results["Random"]}) == []

    def test_evaluate_shapes_finds_run(self, results):
        out = fig2a_cumulative_reward(CFG, results=results)
        checks = evaluate_shapes([out])
        assert len(checks) > 0

    def test_render_report_structure(self, results):
        out = fig2a_cumulative_reward(CFG, results=results)
        checks = evaluate_shapes([out], extra_checks=[ShapeCheck("X", "custom", True, "ok")])
        text = render_report([out], checks, preamble="intro text")
        assert text.startswith("# EXPERIMENTS")
        assert "intro text" in text
        assert "## Shape-check summary" in text
        assert "## fig2a" in text
        assert "custom" in text

    def test_verdict_strings(self):
        good = ShapeCheck("E1", "c", True).as_row()["verdict"]
        bad = ShapeCheck("E1", "c", False).as_row()["verdict"]
        assert good == "PASS" and bad == "DIVERGES"
