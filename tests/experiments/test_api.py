"""The stable repro.api facade: config resolution, typed results, parity."""

import numpy as np
import pytest

import repro
from repro import api
from repro.experiments.runner import ExperimentConfig, run_experiment


class TestConfigResolution:
    def test_scale_preset_with_overrides(self):
        result = api.run(scale="tiny", horizon=8, seed=3, policies=("Random",))
        assert result.config.horizon == 8
        assert result.config.seed == 3
        assert result.config.num_scns == ExperimentConfig.tiny().num_scns

    def test_explicit_config_wins(self):
        cfg = ExperimentConfig.tiny(horizon=6)
        result = api.run(cfg, ("Random",))
        assert result.config is cfg

    def test_overrides_apply_on_explicit_config(self):
        cfg = ExperimentConfig.tiny(horizon=6)
        result = api.run(cfg, ("Random",), horizon=9)
        assert result.config.horizon == 9

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            api.run(scale="galactic", policies=("Random",))


class TestRunResult:
    def test_parity_with_run_experiment(self):
        cfg = ExperimentConfig.tiny(horizon=10)
        via_api = api.run(cfg, ("Oracle", "Random"))
        direct = run_experiment(cfg, ("Oracle", "Random"))
        for name in ("Oracle", "Random"):
            np.testing.assert_array_equal(via_api[name].reward, direct[name].reward)

    def test_mapping_access_and_table(self):
        result = api.run(scale="tiny", horizon=10, policies=("Oracle", "Random"))
        assert result.policies == ("Oracle", "Random")
        assert set(iter(result)) == {"Oracle", "Random"}
        table = result.table()
        assert "Oracle" in table and "total_reward" in table
        assert {row["policy"] for row in result.rows()} == {"Oracle", "Random"}
        assert set(result.summary()["Random"]) >= {"total_reward"}


class TestReplicationResult:
    def test_seeds_and_summaries(self):
        result = api.replicate(
            scale="tiny", horizon=10, policies=("Random",), seeds=2, workers=1
        )
        assert len(result.seeds) == 2
        summary = result["Random"]["total_reward"]
        assert summary.n == 2
        assert "Random" in result.table()

    def test_explicit_seed_list(self):
        result = api.replicate(
            scale="tiny", horizon=8, policies=("Random",), seeds=[4, 5], workers=1
        )
        assert result.seeds == (4, 5)


class TestCompare:
    def test_lfsc_vs_oracle(self):
        result = api.compare("LFSC", "Oracle", scale="tiny", horizon=12)
        assert result.policy == "LFSC" and result.baseline == "Oracle"
        assert 0.0 < result.reward_ratio <= 1.5
        assert np.isfinite(result.early_violation_ratio) or np.isnan(
            result.early_violation_ratio
        )
        assert "LFSC" in result.table()


class TestExport:
    def test_api_importable_from_package_root(self):
        assert repro.api is api
        assert "api" in repro.__all__
        assert callable(repro.api.run)
        assert callable(repro.api.replicate)
        assert callable(repro.api.compare)
