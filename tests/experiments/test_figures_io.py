"""Tests for the figure harnesses, ablations, and result IO."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    ablation_assignment_mode,
    ablation_lagrangian,
    ablation_partition_granularity,
)
from repro.experiments.figures import (
    fig2a_cumulative_reward,
    fig2b_per_slot_reward,
    fig2_violations,
    fig3_alpha_sweep,
    fig4_likelihood_sweep,
    performance_ratio_table,
)
from repro.experiments.io import load_results, save_results
from repro.experiments.runner import ExperimentConfig, run_experiment

CFG = ExperimentConfig.tiny(horizon=25)
POLICIES = ("Oracle", "LFSC", "Random")


@pytest.fixture(scope="module")
def shared_results():
    return run_experiment(CFG, POLICIES)


class TestFig2Harnesses:
    def test_fig2a_series_and_rows(self, shared_results):
        out = fig2a_cumulative_reward(CFG, POLICIES, results=shared_results)
        assert set(out.series) == set(POLICIES)
        assert len(out.series["LFSC"]) == 25
        assert (np.diff(out.series["Oracle"]) >= -1e-12).all()
        assert len(out.rows) == 3
        assert "policy" in out.rows[0]

    def test_fig2b_smoothing(self, shared_results):
        out = fig2b_per_slot_reward(CFG, POLICIES, window=5, results=shared_results)
        assert len(out.series["LFSC"]) == 25 - 5 + 1

    def test_fig2_violations_keys(self, shared_results):
        out = fig2_violations(CFG, POLICIES, results=shared_results)
        assert "LFSC/qos" in out.series
        assert "Random/total" in out.series
        labels = [r["policy"] for r in out.rows]
        assert any("early-violation ratio" in str(l) for l in labels)

    def test_table_renders(self, shared_results):
        out = fig2a_cumulative_reward(CFG, POLICIES, results=shared_results)
        text = out.table()
        assert "LFSC" in text and "Oracle" in text

    def test_ratio_table_sorted(self, shared_results):
        out = performance_ratio_table(CFG, POLICIES, results=shared_results)
        vals = [float(r["performance_ratio"]) for r in out.rows]
        assert vals == sorted(vals, reverse=True)


class TestSweeps:
    def test_fig3_alpha_sweep(self):
        out = fig3_alpha_sweep(
            CFG, alphas=(1.0, 2.0), policies=("Oracle", "Random")
        )
        np.testing.assert_array_equal(out.series["x"], [1.0, 2.0])
        assert out.series["Oracle/reward"].shape == (2,)
        assert len(out.rows) == 4  # 2 policies x 2 alphas

    def test_fig3_violation_monotone_in_alpha_for_random(self):
        out = fig3_alpha_sweep(
            CFG, alphas=(0.5, 2.5), policies=("Random",)
        )
        v = out.series["Random/violation_qos"]
        assert v[1] >= v[0]

    def test_fig4_likelihood_sweep(self):
        out = fig4_likelihood_sweep(
            CFG, v_lows=(0.0, 0.5), policies=("Random",)
        )
        assert out.series["Random/reward"].shape == (2,)
        # More reliable links -> more reward for the same policy.
        assert out.series["Random/reward"][1] > out.series["Random/reward"][0]


class TestAblations:
    def test_lagrangian_ablation_runs(self):
        out = ablation_lagrangian(CFG)
        assert set(out.results) == {"LFSC", "LFSC-noLagrangian"}

    def test_assignment_mode_ablation_runs(self):
        out = ablation_assignment_mode(CFG)
        assert set(out.results) == {"LFSC-depround", "LFSC-deterministic"}

    def test_partition_ablation_runs(self):
        out = ablation_partition_granularity(CFG, parts_values=(1, 2))
        assert set(out.results) == {"LFSC-h1", "LFSC-h2"}


class TestIO:
    def test_roundtrip(self, shared_results, tmp_path):
        base = tmp_path / "run"
        npz, js = save_results(shared_results, base)
        assert npz.exists() and js.exists()
        loaded = load_results(base)
        assert set(loaded) == set(shared_results)
        for name in shared_results:
            np.testing.assert_array_equal(
                loaded[name].reward, shared_results[name].reward
            )
            assert loaded[name].horizon == shared_results[name].horizon

    def test_summary_preserved_in_json(self, shared_results, tmp_path):
        import json

        _, js = save_results(shared_results, tmp_path / "x")
        meta = json.loads(js.read_text())
        assert meta["LFSC"]["summary"]["total_reward"] == pytest.approx(
            shared_results["LFSC"].total_reward
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "absent")

    def test_creates_parent_dirs(self, shared_results, tmp_path):
        save_results(shared_results, tmp_path / "deep" / "nested" / "run")
