"""Serial vs. process-parallel equivalence — the harness's core guarantee.

``run_replications(workers=0)`` (parallel by default) must produce
bit-identical per-seed ``SimulationResult`` arrays to ``workers=1`` (serial)
and to any explicit pool size, for both LFSC slot engines and both
assignment modes, and for the baseline policies.  CI runs this suite with
``REPRO_TEST_WORKERS=2`` so the pool path is exercised even where
``workers=0`` falls back to serial (single-core runners).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments.replication import run_replications
from repro.experiments.runner import ExperimentConfig, run_experiment

#: Explicit pool size for the forced-parallel leg (CI sets 2).
POOL_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

CFG = ExperimentConfig.tiny(horizon=30)

#: Arrays compared bit-for-bit between serial and parallel replications.
_SERIES = (
    "reward",
    "expected_reward",
    "completed",
    "consumption",
    "accepted",
    "violation_qos",
    "violation_resource",
    "violation_qos_realized",
    "violation_resource_realized",
)


def assert_runs_identical(a, b) -> None:
    """Element-wise equality of two run_replications outputs."""
    assert len(a) == len(b)
    for run_a, run_b in zip(a, b):
        assert run_a.index == run_b.index
        assert run_a.seed == run_b.seed
        assert set(run_a.results) == set(run_b.results)
        for name in run_a.results:
            ra, rb = run_a.results[name], run_b.results[name]
            for series in _SERIES:
                np.testing.assert_array_equal(
                    getattr(ra, series),
                    getattr(rb, series),
                    err_msg=f"{name}.{series} diverged for seed {run_a.seed}",
                )


def _engine_cfg(engine: str, mode: str) -> ExperimentConfig:
    return CFG.with_lfsc_overrides(engine=engine, assignment_mode=mode)


@pytest.mark.parametrize("engine", ("batched", "reference"))
@pytest.mark.parametrize("mode", ("deterministic", "depround"))
class TestLFSCEngineEquivalence:
    def test_default_parallel_equals_serial(self, engine, mode):
        cfg = _engine_cfg(engine, mode)
        parallel = run_replications(cfg, ("LFSC",), seeds=3, workers=0)
        serial = run_replications(cfg, ("LFSC",), seeds=3, workers=1)
        assert_runs_identical(parallel, serial)

    def test_forced_pool_equals_serial(self, engine, mode):
        # Explicit n >= 2 always uses a real process pool, so this leg
        # proves cross-process determinism even on single-core hosts.
        cfg = _engine_cfg(engine, mode)
        pooled = run_replications(cfg, ("LFSC",), seeds=3, workers=POOL_WORKERS)
        serial = run_replications(cfg, ("LFSC",), seeds=3, workers=1)
        assert_runs_identical(pooled, serial)


class TestBaselineEquivalence:
    POLICIES = ("Oracle", "vUCB", "FML", "Random")

    def test_parallel_equals_serial_all_baselines(self):
        parallel = run_replications(CFG, self.POLICIES, seeds=2, workers=POOL_WORKERS)
        serial = run_replications(CFG, self.POLICIES, seeds=2, workers=1)
        assert_runs_identical(parallel, serial)

    def test_explicit_seed_list_equivalence(self):
        seeds = [11, 12, 13]
        parallel = run_replications(CFG, ("Random",), seeds=seeds, workers=POOL_WORKERS)
        serial = run_replications(CFG, ("Random",), seeds=seeds, workers=1)
        assert [r.seed for r in parallel] == seeds
        assert_runs_identical(parallel, serial)


class TestSchedulingIndependence:
    def test_chunking_cannot_reorder_results(self):
        # Same sweep through 1-item and 2-item chunks: identical output.
        a = run_replications(CFG, ("Random",), seeds=4, workers=POOL_WORKERS)
        b = run_replications(CFG, ("Random",), seeds=4, workers=1)
        assert_runs_identical(a, b)
        assert [r.index for r in a] == [0, 1, 2, 3]

    def test_worker_count_does_not_change_seeds(self):
        for workers in (1, POOL_WORKERS):
            runs = run_replications(CFG, ("Random",), seeds=3, workers=workers)
            assert [r.seed for r in runs] == [
                13046892107959339253,
                12439981908815758231,
                12865545366157553917,
            ]

    def test_run_experiment_parallel_equals_serial(self):
        # The per-experiment fan-out (across policies) obeys the same law.
        serial = run_experiment(CFG, ("Random", "vUCB"), workers=1)
        pooled = run_experiment(CFG, ("Random", "vUCB"), workers=POOL_WORKERS)
        for name in serial:
            np.testing.assert_array_equal(serial[name].reward, pooled[name].reward)
