"""Shared builder for the committed golden replication summaries.

One source of truth for what the golden JSON contains: the regression test
(``test_golden_summaries.py``) and the regeneration script
(``regen_golden.py``) both call :func:`compute_golden`, so the committed
file can never drift from what the test recomputes.

The golden freezes, at fixed contract-derived seeds on the tiny config:

- per-seed and mean total (expected) reward, V1/V2 violations, and
  performance ratio for each policy of the Fig. 2 line-up;
- per-seed and mean final regret of each learner against the Oracle run
  that shared its workload seed.

Any kernel/engine refactor that shifts a learning curve shows up here as a
numeric diff far above the floating-point tolerance, instead of silently
changing EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.experiments.replication import run_replications
from repro.experiments.runner import ExperimentConfig
from repro.metrics.regret import regret_series

GOLDEN_PATH = Path(__file__).parent / "golden" / "replication_tiny.json"

#: Frozen golden scenario — changing any of these requires regenerating the
#: committed JSON (``python -m tests.experiments.regen_golden``).
GOLDEN_BASE_SEED = 0
GOLDEN_REPLICATIONS = 3
GOLDEN_HORIZON = 60
GOLDEN_POLICIES = ("Oracle", "LFSC", "vUCB", "Random")


def golden_config() -> ExperimentConfig:
    return ExperimentConfig.tiny(horizon=GOLDEN_HORIZON, seed=GOLDEN_BASE_SEED)


def compute_golden(*, workers: int | None = 1) -> dict:
    """Recompute the golden summary structure from scratch."""
    cfg = golden_config()
    runs = run_replications(
        cfg, GOLDEN_POLICIES, seeds=GOLDEN_REPLICATIONS, workers=workers
    )
    policies: dict[str, dict] = {}
    for name in GOLDEN_POLICIES:
        per_seed = []
        for run in runs:
            res = run.results[name]
            entry = {
                "seed": run.seed,
                "total_reward": res.total_reward,
                "total_expected_reward": float(res.expected_reward.sum()),
                "violation_qos": float(res.violation_qos.sum()),
                "violation_resource": float(res.violation_resource.sum()),
                "total_violations": res.total_violations,
                "performance_ratio": res.summary()["performance_ratio"],
            }
            if name != "Oracle":
                entry["final_regret"] = float(
                    regret_series(res, run.results["Oracle"])[-1]
                )
            per_seed.append(entry)
        scalars = [k for k in per_seed[0] if k != "seed"]
        policies[name] = {
            "per_seed": per_seed,
            "mean": {k: float(np.mean([p[k] for p in per_seed])) for k in scalars},
        }
    return {
        "schema": "golden_replication/v1",
        "config": {
            "preset": "tiny",
            "horizon": GOLDEN_HORIZON,
            "base_seed": GOLDEN_BASE_SEED,
            "replications": GOLDEN_REPLICATIONS,
        },
        "seeds": [run.seed for run in runs],
        "policies": policies,
    }


def load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def write_golden(report: dict) -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(report, indent=2) + "\n")
