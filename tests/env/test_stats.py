"""Tests for repro.env.stats — the workload matches the paper's §5 spec."""

import numpy as np
import pytest

from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.stats import workload_statistics
from repro.env.workload import SyntheticWorkload


def paper_workload() -> SyntheticWorkload:
    return SyntheticWorkload(
        features=TaskFeatureModel(),
        coverage_model=CoverageSampler(num_scns=10, k_min=35, k_max=100, overlap=2.0),
    )


class TestWorkloadStatistics:
    @pytest.fixture(scope="class")
    def stats(self):
        return workload_statistics(paper_workload(), slots=60)

    def test_coverage_sizes_match_section5(self, stats):
        assert stats.coverage_size_min >= 35
        assert stats.coverage_size_max <= 100
        assert 55 <= stats.coverage_size_mean <= 80  # mean of U[35,100] ≈ 67.5

    def test_overlap_near_configured(self, stats):
        assert 1.5 <= stats.overlap_mean <= 2.5

    def test_feature_ranges_match_section5(self, stats):
        in_lo, in_hi = stats.input_mbit_range
        out_lo, out_hi = stats.output_mbit_range
        assert in_lo >= 5.0 and in_hi <= 20.0
        assert out_lo >= 1.0 and out_hi <= 4.0

    def test_resource_mix_roughly_uniform(self, stats):
        mix = np.asarray(stats.resource_mix)
        assert mix.sum() == pytest.approx(1.0)
        assert (np.abs(mix - 1 / 3) < 0.1).all()

    def test_most_tasks_covered(self, stats):
        assert stats.covered_fraction > 0.8

    def test_rows_render(self, stats):
        from repro.metrics.summary import format_table

        text = format_table(stats.rows())
        assert "overlap" in text

    def test_contexts_only_workload(self, rng):
        # A workload without raw features (e.g. a minimal trace) still works.
        from repro.env.tasks import TaskBatch
        from repro.env.workload import SlotWorkload, TraceWorkload

        slot = SlotWorkload(
            t=0,
            tasks=TaskBatch.from_contexts(rng.random((5, 3))),
            coverage=[np.arange(5)],
        )
        stats = workload_statistics(TraceWorkload(slots=[slot]), slots=3)
        assert stats.input_mbit_range is None
        assert stats.resource_mix is None
        assert stats.tasks_per_slot_mean == 5.0

    def test_slots_validated(self):
        with pytest.raises(ValueError):
            workload_statistics(paper_workload(), slots=0)
