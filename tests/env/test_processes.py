"""Tests for repro.env.processes — the ground-truth random processes."""

import numpy as np
import pytest

from repro.env.processes import (
    DriftingTruth,
    PiecewiseConstantTruth,
    RegimeSwitchTruth,
    SmoothTruth,
)


def small_truth(**kw):
    params = dict(num_scns=4, dims=2, cells_per_dim=2, seed=0)
    params.update(kw)
    return PiecewiseConstantTruth(**params)


class TestPiecewiseConstantTruth:
    def test_table_shapes(self):
        truth = small_truth()
        assert truth.mu_u.shape == (4, 4)
        assert truth.p_v.shape == (4, 4)
        assert truth.q_lo.shape == (4, 4)

    def test_parameter_ranges(self):
        truth = small_truth(u_range=(0.2, 0.8), v_range=(0.5, 1.0))
        assert truth.mu_u.min() >= 0.2 and truth.mu_u.max() <= 0.8
        assert truth.p_v.min() >= 0.5 and truth.p_v.max() <= 1.0
        assert truth.q_lo.min() >= 1.0 and truth.q_hi.max() <= 2.0
        np.testing.assert_allclose(truth.q_hi - truth.q_lo, 0.5)

    def test_means_constant_within_cell(self, rng):
        truth = small_truth()
        # Both contexts fall in the same cell of the 2x2 grid.
        ctx = np.array([[0.1, 0.1], [0.2, 0.3]])
        mu_u, p_v, mu_q = truth.means(0, ctx)
        np.testing.assert_allclose(mu_u[:, 0], mu_u[:, 1])
        np.testing.assert_allclose(p_v[:, 0], p_v[:, 1])
        np.testing.assert_allclose(mu_q[:, 0], mu_q[:, 1])

    def test_realize_ranges(self, rng):
        truth = small_truth()
        ctx = rng.random((100, 2))
        scn = rng.integers(0, 4, size=100)
        u, v, q = truth.realize(0, ctx, scn, rng)
        assert u.min() >= 0.0 and u.max() <= 1.0
        assert set(np.unique(v)) <= {0.0, 1.0}
        assert q.min() >= 1.0 and q.max() <= 2.0

    def test_realize_unbiased_u(self, rng):
        truth = small_truth(u_concentration=10.0)
        ctx = np.tile([[0.1, 0.1]], (20000, 1))
        scn = np.zeros(20000, dtype=int)
        u, _, _ = truth.realize(0, ctx, scn, rng)
        mu = truth.means(0, ctx[:1])[0][0, 0]
        assert abs(u.mean() - mu) < 0.02

    def test_realize_bernoulli_v_matches_p(self, rng):
        truth = small_truth()
        ctx = np.tile([[0.9, 0.9]], (20000, 1))
        scn = np.full(20000, 2, dtype=int)
        _, v, _ = truth.realize(0, ctx, scn, rng)
        p = truth.means(0, ctx[:1])[1][2, 0]
        assert abs(v.mean() - p) < 0.02

    def test_deterministic_u_mode(self, rng):
        truth = small_truth(u_concentration=np.inf)
        ctx = np.tile([[0.1, 0.1]], (10, 1))
        u, _, _ = truth.realize(0, ctx, np.zeros(10, dtype=int), rng)
        assert np.allclose(u, u[0])

    def test_expected_inverse_q_closed_form(self, rng):
        truth = small_truth()
        ctx = rng.random((5, 2))
        inv = truth.expected_inverse_q(ctx)
        # Monte-Carlo check against the analytic value for one (scn, ctx).
        scn = np.zeros(50000, dtype=int)
        big_ctx = np.tile(ctx[:1], (50000, 1))
        _, _, q = truth.realize(0, big_ctx, scn, rng)
        assert abs((1.0 / q).mean() - inv[0, 0]) < 0.005

    def test_expected_compound_product_form(self, rng):
        truth = small_truth()
        ctx = rng.random((7, 2))
        expected = truth.expected_compound(0, ctx)
        mu_u, p_v, _ = truth.means(0, ctx)
        np.testing.assert_allclose(expected, mu_u * p_v * truth.expected_inverse_q(ctx))

    def test_same_seed_same_truth(self):
        a, b = small_truth(seed=3), small_truth(seed=3)
        np.testing.assert_array_equal(a.mu_u, b.mu_u)

    def test_different_seed_different_truth(self):
        a, b = small_truth(seed=3), small_truth(seed=4)
        assert not np.array_equal(a.mu_u, b.mu_u)

    def test_reward_bound(self):
        truth = small_truth()
        assert truth.reward_bound() >= 0.5  # 1/q_max at least
        assert truth.reward_bound() <= 1.0  # 1/q_min at most

    def test_scn_context_shape_mismatch(self, rng):
        truth = small_truth()
        with pytest.raises(ValueError):
            truth.realize(0, rng.random((3, 2)), np.zeros(2, dtype=int), rng)

    def test_invalid_q_range(self):
        with pytest.raises(ValueError):
            small_truth(q_range=(0.0, 2.0))


class TestSmoothTruth:
    def test_means_in_range(self, rng):
        truth = SmoothTruth(num_scns=3, dims=2, seed=1)
        ctx = rng.random((50, 2))
        mu_u, p_v, mu_q = truth.means(0, ctx)
        assert mu_u.min() > 0.0 and mu_u.max() < 1.0
        assert p_v.min() > 0.0 and p_v.max() < 1.0
        assert mu_q.min() >= 1.0 and mu_q.max() <= 2.0

    def test_lipschitz_like_continuity(self, rng):
        truth = SmoothTruth(num_scns=2, dims=2, frequency=0.5, seed=1)
        base = rng.random((20, 2)) * 0.9
        bumped = base + 1e-4
        g1 = truth.expected_compound(0, base)
        g2 = truth.expected_compound(0, bumped)
        assert np.abs(g1 - g2).max() < 1e-2

    def test_realize_shapes_and_ranges(self, rng):
        truth = SmoothTruth(num_scns=3, dims=2, seed=1)
        ctx = rng.random((30, 2))
        scn = rng.integers(0, 3, size=30)
        u, v, q = truth.realize(0, ctx, scn, rng)
        assert u.shape == v.shape == q.shape == (30,)
        assert u.min() >= 0 and u.max() <= 1
        assert set(np.unique(v)) <= {0.0, 1.0}


class TestDriftingTruth:
    def test_advance_changes_mu_u_only(self, rng):
        truth = DriftingTruth(base=small_truth(), drift=0.1)
        before_u = truth.base.mu_u.copy()
        before_v = truth.base.p_v.copy()
        truth.advance(0, rng)
        assert not np.array_equal(truth.base.mu_u, before_u)
        np.testing.assert_array_equal(truth.base.p_v, before_v)

    def test_mu_u_stays_in_range(self, rng):
        truth = DriftingTruth(base=small_truth(), drift=0.5)
        for t in range(200):
            truth.advance(t, rng)
        assert truth.base.mu_u.min() >= 0.0
        assert truth.base.mu_u.max() <= 1.0

    def test_zero_drift_nearly_static(self, rng):
        truth = DriftingTruth(base=small_truth(), drift=0.0)
        before = truth.base.mu_u.copy()
        truth.advance(0, rng)
        np.testing.assert_allclose(truth.base.mu_u, before)


class TestRegimeSwitchTruth:
    def make(self, p=1.0):
        return RegimeSwitchTruth(
            regime_a=small_truth(seed=0),
            regime_b=small_truth(seed=1),
            switch_prob=p,
        )

    def test_regimes_share_v_and_q(self):
        truth = self.make()
        assert truth.regime_b.p_v is truth.regime_a.p_v
        assert truth.regime_b.q_lo is truth.regime_a.q_lo

    def test_switch_flips_active(self, rng):
        truth = self.make(p=1.0)
        assert truth.active_regime == "a"
        truth.advance(0, rng)
        assert truth.active_regime == "b"
        truth.advance(1, rng)
        assert truth.active_regime == "a"

    def test_no_switch_with_zero_prob(self, rng):
        truth = self.make(p=0.0)
        for t in range(20):
            truth.advance(t, rng)
        assert truth.active_regime == "a"

    def test_expected_compound_follows_regime(self, rng):
        truth = self.make(p=1.0)
        ctx = rng.random((5, 2))
        g_a = truth.expected_compound(0, ctx)
        truth.advance(0, rng)
        g_b = truth.expected_compound(1, ctx)
        assert not np.allclose(g_a, g_b)

    def test_mismatched_regimes_rejected(self):
        with pytest.raises(ValueError):
            RegimeSwitchTruth(
                regime_a=small_truth(num_scns=2),
                regime_b=small_truth(num_scns=3),
            )
