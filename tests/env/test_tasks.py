"""Tests for repro.env.tasks — struct-of-arrays task batches."""

import numpy as np
import pytest

from repro.env.tasks import TaskBatch


class TestTaskBatch:
    def test_from_contexts_defaults(self):
        batch = TaskBatch.from_contexts(np.zeros((4, 3)))
        assert batch.n == 4
        assert batch.dims == 3
        np.testing.assert_array_equal(batch.ids, [0, 1, 2, 3])

    def test_from_contexts_start_id(self):
        batch = TaskBatch.from_contexts(np.zeros((2, 3)), start_id=10)
        np.testing.assert_array_equal(batch.ids, [10, 11])

    def test_len(self):
        assert len(TaskBatch.from_contexts(np.zeros((7, 2)))) == 7

    def test_single_row_promoted(self):
        batch = TaskBatch(contexts=np.zeros(3))
        assert batch.contexts.shape == (1, 3)

    def test_id_shape_validated(self):
        with pytest.raises(ValueError, match="ids"):
            TaskBatch(contexts=np.zeros((3, 2)), ids=np.array([1, 2]))

    def test_aux_shape_validated(self):
        with pytest.raises(ValueError, match="input_mbit"):
            TaskBatch(contexts=np.zeros((3, 2)), input_mbit=np.zeros(2))

    def test_resource_shape_validated(self):
        with pytest.raises(ValueError, match="resource_type"):
            TaskBatch(contexts=np.zeros((3, 2)), resource_type=np.zeros(4))

    def test_subset_orders_and_filters(self):
        contexts = np.arange(12, dtype=float).reshape(4, 3)
        batch = TaskBatch(
            contexts=contexts,
            ids=np.array([10, 11, 12, 13]),
            input_mbit=np.array([1.0, 2.0, 3.0, 4.0]),
            output_mbit=np.array([5.0, 6.0, 7.0, 8.0]),
            resource_type=np.array([0, 1, 2, 0]),
        )
        sub = batch.subset(np.array([2, 0]))
        assert sub.n == 2
        np.testing.assert_array_equal(sub.ids, [12, 10])
        np.testing.assert_array_equal(sub.contexts, contexts[[2, 0]])
        np.testing.assert_array_equal(sub.input_mbit, [3.0, 1.0])
        np.testing.assert_array_equal(sub.resource_type, [2, 0])

    def test_subset_without_aux_fields(self):
        batch = TaskBatch.from_contexts(np.zeros((3, 2)))
        sub = batch.subset(np.array([1]))
        assert sub.input_mbit is None
        assert sub.resource_type is None
