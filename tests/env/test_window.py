"""Windowed slot streaming is bit-identical to the per-slot driver.

The acceptance bar for the windowed pipeline (PR 4): for every window size —
including W=1, a W that does not divide the horizon, and a W larger than the
horizon — running the simulation with ``window=W`` must produce byte-for-byte
the same trajectory as ``window=0`` (the per-slot driver), for both slot
engines and both assignment modes.  The window precompute consumes the
workload RNG in exactly the per-slot order (``sample_slots``), and every
derived structure (edge lists, hypercube indices, truth cells) is pure
bookkeeping, so any divergence here means the streaming layer leaked into
the randomness or reordered arithmetic.
"""

import numpy as np
import pytest

from repro.core.lfsc import LFSCPolicy
from repro.env.simulator import DEFAULT_WINDOW
from repro.env.window import PrecomputedSlot, precompute_window
from repro.experiments.runner import (
    ExperimentConfig,
    build_simulation,
    build_truth,
    build_workload,
)

HORIZON = 40
WINDOWS = (1, 7, 64)  # 7 does not divide 40; 64 exceeds the horizon


def _cfg(**overrides) -> ExperimentConfig:
    return ExperimentConfig.tiny(horizon=HORIZON, **overrides)


def _run(cfg: ExperimentConfig, mode: str, engine: str, window: int):
    sim = build_simulation(cfg)
    lfsc = cfg.lfsc_config().with_overrides(assignment_mode=mode, engine=engine)
    return sim.run(LFSCPolicy(lfsc), cfg.horizon, window=window)


def _assert_identical(a, b) -> None:
    np.testing.assert_array_equal(a.reward, b.reward)
    np.testing.assert_array_equal(a.expected_reward, b.expected_reward)
    np.testing.assert_array_equal(a.completed, b.completed)
    np.testing.assert_array_equal(a.consumption, b.consumption)
    np.testing.assert_array_equal(a.accepted, b.accepted)
    np.testing.assert_array_equal(a.violation_qos, b.violation_qos)
    np.testing.assert_array_equal(a.violation_resource, b.violation_resource)


class TestWindowedEquivalence:
    @pytest.mark.parametrize("engine", ["batched", "reference"])
    @pytest.mark.parametrize("mode", ["deterministic", "depround"])
    @pytest.mark.parametrize("window", WINDOWS)
    def test_bit_identical_to_per_slot(self, engine, mode, window):
        cfg = _cfg()
        per_slot = _run(cfg, mode, engine, window=0)
        windowed = _run(cfg, mode, engine, window=window)
        _assert_identical(per_slot, windowed)

    def test_default_window_matches_per_slot(self):
        cfg = _cfg()
        per_slot = _run(cfg, "depround", "batched", window=0)
        sim = build_simulation(cfg)
        default = sim.run(LFSCPolicy(cfg.lfsc_config()), cfg.horizon)  # window=None
        _assert_identical(per_slot, default)

    def test_horizon_not_divisible_boundary(self):
        # horizon=10, W=7: the second window must clamp to 3 slots.
        cfg = ExperimentConfig.tiny(horizon=10)
        _assert_identical(
            _run(cfg, "depround", "batched", window=0),
            _run(cfg, "depround", "batched", window=7),
        )

    def test_adaptive_partition_stays_identical(self):
        # A stateful partition refines mid-window, so the driver must fall
        # back to per-slot classification — trajectories stay identical.
        from repro.core.adaptive import AdaptiveLFSCPolicy, AdaptivePartition

        cfg = _cfg()

        def run(window: int):
            sim = build_simulation(cfg)
            policy = AdaptiveLFSCPolicy(
                cfg.lfsc_config(),
                partition=AdaptivePartition(
                    dims=cfg.dims, max_leaves=64, split_base=10.0, split_rho=1.0
                ),
            )
            return sim.run(policy, cfg.horizon, window=window)

        _assert_identical(run(0), run(7))


class TestSampleSlots:
    def test_matches_sequential_generation(self):
        cfg = _cfg()
        seq_wl, win_wl = build_workload(cfg), build_workload(cfg)
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        sequential = [seq_wl.slot(t, rng_a) for t in range(6)]
        batched = win_wl.sample_slots(0, 6, rng_b)
        assert len(batched) == 6
        for s, b in zip(sequential, batched):
            assert b.t == s.t
            np.testing.assert_array_equal(s.tasks.contexts, b.tasks.contexts)
            np.testing.assert_array_equal(s.tasks.ids, b.tasks.ids)
            for cs, cb in zip(s.coverage, b.coverage):
                np.testing.assert_array_equal(np.asarray(cs), np.asarray(cb))
        # The RNG streams must be in the same state afterwards.
        assert rng_a.random() == rng_b.random()


class TestPrecomputeWindow:
    def test_structure(self):
        cfg = _cfg()
        workload = build_workload(cfg)
        truth = build_truth(cfg)
        partition = cfg.partition
        win = precompute_window(
            workload,
            0,
            5,
            np.random.default_rng(7),
            partition=partition,
            context_cells=truth.context_cells,
        )
        assert win.start == 0 and len(win) == 5
        for i, slot in enumerate(win.slots):
            assert isinstance(slot, PrecomputedSlot)
            assert slot.t == i
            edges = slot.edges
            n = len(slot.tasks)
            E = edges.num_edges
            # Offsets partition the edge list into per-SCN segments.
            assert edges.offsets.shape == (cfg.num_scns + 1,)
            assert edges.offsets[0] == 0 and edges.offsets[-1] == E
            np.testing.assert_array_equal(np.diff(edges.offsets), edges.lengths)
            # Edge arrays agree with the slot's coverage lists.
            for m, cov in enumerate(slot.coverage):
                seg = slice(*edges.bounds[m : m + 2])
                np.testing.assert_array_equal(edges.task[seg], np.asarray(cov))
                assert np.all(edges.scn[seg] == m)
            # Keys encode (scn, task) and cubes match a fresh classification.
            np.testing.assert_array_equal(
                edges.key, edges.scn * np.int64(n) + edges.task
            )
            np.testing.assert_array_equal(
                edges.cube, partition.assign(slot.tasks.contexts)[edges.task]
            )
            np.testing.assert_array_equal(
                edges.flat, edges.scn * np.int64(partition.num_cubes) + edges.cube
            )
            np.testing.assert_array_equal(
                slot.truth_cells, truth.context_cells(slot.tasks.contexts)
            )

    def test_rejects_empty_window(self):
        cfg = _cfg()
        with pytest.raises(ValueError):
            precompute_window(build_workload(cfg), 0, 0, np.random.default_rng(0))


class TestEffectiveWindow:
    def test_eligibility(self):
        cfg = _cfg()
        sim = build_simulation(cfg)
        batched = LFSCPolicy(cfg.lfsc_config().with_overrides(engine="batched"))
        reference = LFSCPolicy(cfg.lfsc_config().with_overrides(engine="reference"))
        assert sim._effective_window(batched, None) == DEFAULT_WINDOW
        assert sim._effective_window(batched, 5) == 5
        assert sim._effective_window(batched, 0) == 0
        # The reference engine has no windowed path.
        assert sim._effective_window(reference, None) == 0
        assert sim._effective_window(reference, 5) == 0
