"""Tests for repro.env.multislot and the priority-aware policy."""

import numpy as np
import pytest

from repro.baselines.priority import PriorityAwareLFSC
from repro.core.config import LFSCConfig
from repro.core.lfsc import LFSCPolicy
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.multislot import MultiSlotTracker, MultiSlotWorkload
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback


def make_workload(**kw) -> MultiSlotWorkload:
    params = dict(
        features=TaskFeatureModel(),
        coverage_model=CoverageSampler(num_scns=3, k_min=4, k_max=8),
        max_duration=3,
        max_backlog=50,
    )
    params.update(kw)
    return MultiSlotWorkload(**params)


def feedback_for(slot, assignment, v_value=1.0):
    k = len(assignment)
    u = np.full(k, 0.8)
    v = np.full(k, v_value)
    q = np.full(k, 1.6)
    return SlotFeedback(assignment, u, v, q, u * v / q)


class TestMultiSlotWorkload:
    def test_first_slot_all_fresh(self, rng):
        wl = make_workload()
        slot = wl.slot(0, rng)
        assert (slot.tasks.priority == 0).all()
        assert len(wl.pending) == len(slot.tasks)

    def test_unserved_tasks_resubmit(self, rng):
        wl = make_workload()
        s0 = wl.slot(0, rng)
        n0 = len(s0.tasks)
        s1 = wl.slot(1, rng)
        # Slot 1 contains its own arrivals plus all of slot 0's tasks.
        resubmitted = set(s0.tasks.ids.tolist()) & set(s1.tasks.ids.tolist())
        assert len(resubmitted) == n0

    def test_resubmitted_tasks_keep_neighbourhood(self, rng):
        wl = make_workload()
        s0 = wl.slot(0, rng)
        covered_by = {
            int(s0.tasks.ids[i]): {m for m, c in enumerate(s0.coverage) if i in c}
            for i in range(len(s0.tasks))
        }
        s1 = wl.slot(1, rng)
        id_to_idx = {int(tid): i for i, tid in enumerate(s1.tasks.ids)}
        for tid, scns in covered_by.items():
            idx = id_to_idx[tid]
            now = {m for m, c in enumerate(s1.coverage) if idx in c}
            assert now == scns

    def test_backlog_capped(self, rng):
        wl = make_workload(max_backlog=5)
        for t in range(10):
            wl.slot(t, rng)  # nothing ever served
        # Pending is at most the cap plus the latest slot's fresh arrivals
        # (bounded by the pool size of the coverage sampler).
        max_new = wl.coverage_model.k_max * wl.num_scns
        assert len(wl.pending) <= 5 + max_new
        assert wl.dropped > 0

    def test_progress_reflected_in_priority(self, rng):
        wl = make_workload()
        slot = wl.slot(0, rng)
        # Manually advance one pending task.
        p = wl.pending[0]
        p.duration = 2
        p.progress = 1
        s1 = wl.slot(1, rng)
        idx = np.flatnonzero(s1.tasks.ids == p.task_id)[0]
        assert s1.tasks.priority[idx] == pytest.approx(0.5)

    def test_reset_clears_state(self, rng):
        wl = make_workload()
        wl.slot(0, rng)
        wl.reset()
        assert wl.pending == [] and wl.dropped == 0


class TestMultiSlotTracker:
    def test_completion_pays_banked_reward(self, rng):
        wl = make_workload()
        tracker = MultiSlotTracker(patience=5)
        slot = wl.slot(0, rng)
        # Serve the first covered task with certainty until it finishes.
        target_idx = int(wl.pending[0].task_id)
        duration = wl.pending[0].duration
        paid_before = tracker.paid_reward
        for t in range(duration):
            idx = np.flatnonzero(slot.tasks.ids == target_idx)[0]
            owner = next(m for m, c in enumerate(slot.coverage) if idx in c)
            asn = Assignment(scn=np.array([owner]), task=np.array([idx]))
            done = tracker.record(wl, slot, feedback_for(slot, asn))
            if t < duration - 1:
                assert target_idx not in done
                slot = wl.slot(t + 1, rng)
        assert tracker.finished == 1
        expected = duration * 0.8 / 1.6
        assert tracker.paid_reward - paid_before == pytest.approx(expected)

    def test_failed_slot_does_not_advance(self, rng):
        wl = make_workload()
        tracker = MultiSlotTracker()
        slot = wl.slot(0, rng)
        idx = 0
        owner = next(m for m, c in enumerate(slot.coverage) if idx in c)
        asn = Assignment(scn=np.array([owner]), task=np.array([idx]))
        tracker.record(wl, slot, feedback_for(slot, asn, v_value=0.0))
        assert wl.pending[0].progress == 0
        assert tracker.finished == 0

    def test_patience_abandons_idle_tasks(self, rng):
        wl = make_workload()
        tracker = MultiSlotTracker(patience=3)
        slot = wl.slot(0, rng)
        n0 = len(wl.pending)
        for t in range(1, 4):
            tracker.record(wl, slot, feedback_for(slot, Assignment.empty()))
            slot = wl.slot(t, rng)
        assert tracker.abandoned >= n0

    def test_completion_rate_nan_before_terminations(self):
        assert np.isnan(MultiSlotTracker().completion_rate())


class TestPriorityAwareLFSC:
    def _setup_policy(self, cls, **kw):
        policy = cls(LFSCConfig.from_theorem(60, 3, 100, parts=2), **kw)
        policy.reset(
            NetworkConfig(num_scns=3, capacity=3, alpha=1.0, beta=4.5),
            horizon=100,
            rng=np.random.default_rng(0),
        )
        return policy

    def test_prefers_in_progress_tasks(self, rng):
        from tests.conftest import make_slot
        from repro.env.tasks import TaskBatch
        from repro.env.workload import SlotWorkload

        contexts = rng.random((10, 3))
        priority = np.zeros(10)
        priority[7] = 0.9  # one almost-finished task
        batch = TaskBatch(contexts=contexts, priority=priority)
        slot = SlotWorkload(
            t=0, tasks=batch, coverage=[np.arange(10), np.arange(10), np.arange(10)]
        )
        hits = 0
        for trial in range(20):
            policy = self._setup_policy(PriorityAwareLFSC, priority_bonus=5.0)
            policy.rng = np.random.default_rng(trial)
            asn = policy.select(slot)
            if 7 in asn.task:
                hits += 1
        assert hits == 20  # the bonus dominates every draw

    def test_without_priority_field_identical_to_lfsc(self, rng):
        from tests.conftest import make_slot

        slot = make_slot(rng.random((8, 3)), [[0, 1, 2], [3, 4, 5], [6, 7]])
        base = self._setup_policy(LFSCPolicy.__mro__[0]) if False else None
        plain = LFSCPolicy(LFSCConfig.from_theorem(60, 3, 100, parts=2))
        plain.reset(
            NetworkConfig(num_scns=3, capacity=3, alpha=1.0, beta=4.5),
            100,
            np.random.default_rng(5),
        )
        prio = self._setup_policy(PriorityAwareLFSC)
        prio.rng = np.random.default_rng(5)
        a = plain.select(slot)
        b = prio.select(slot)
        np.testing.assert_array_equal(a.task, b.task)
        np.testing.assert_array_equal(a.scn, b.scn)

    def test_bonus_validated(self):
        with pytest.raises(ValueError):
            PriorityAwareLFSC(priority_bonus=0.0)
