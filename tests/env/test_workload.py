"""Tests for repro.env.workload — slot generation and traces."""

import numpy as np
import pytest

from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler, GeometricCoverage
from repro.env.workload import SlotWorkload, SyntheticWorkload, TraceWorkload


def make_workload(**cov_kw) -> SyntheticWorkload:
    params = dict(num_scns=4, k_min=5, k_max=10)
    params.update(cov_kw)
    return SyntheticWorkload(
        features=TaskFeatureModel(), coverage_model=CoverageSampler(**params)
    )


class TestSyntheticWorkload:
    def test_slot_structure(self, rng):
        wl = make_workload()
        slot = wl.slot(0, rng)
        assert slot.t == 0
        assert slot.num_scns == 4
        assert slot.tasks.contexts.shape[1] == 3
        for cov in slot.coverage:
            assert cov.max() < len(slot.tasks)

    def test_ids_unique_across_slots(self, rng):
        wl = make_workload()
        s0 = wl.slot(0, rng)
        s1 = wl.slot(1, rng)
        assert set(s0.tasks.ids).isdisjoint(set(s1.tasks.ids))

    def test_reset_restarts_ids(self, rng):
        wl = make_workload()
        first = wl.slot(0, rng).tasks.ids.copy()
        wl.reset()
        again = wl.slot(0, np.random.default_rng(12345)).tasks.ids
        np.testing.assert_array_equal(first, again)

    def test_reset_forwards_to_geometric_coverage(self, rng):
        wl = SyntheticWorkload(
            coverage_model=GeometricCoverage(num_scns=2, num_wds=10)
        )
        wl.slot(0, rng)
        assert wl.coverage_model.wd_positions is not None
        wl.reset()
        assert wl.coverage_model.wd_positions is None

    def test_max_coverage_size_forwarded(self):
        assert make_workload(k_max=17).max_coverage_size() == 17


class TestSlotWorkload:
    def test_covered_mask(self, rng):
        wl = make_workload()
        slot = wl.slot(0, rng)
        mask = slot.covered_mask()
        union = np.unique(np.concatenate(slot.coverage))
        np.testing.assert_array_equal(np.flatnonzero(mask), union)

    def test_coverage_matrix_matches_lists(self, rng):
        slot = make_workload().slot(0, rng)
        mat = slot.coverage_matrix()
        assert mat.shape == (4, len(slot.tasks))
        for m, cov in enumerate(slot.coverage):
            np.testing.assert_array_equal(np.flatnonzero(mat[m]), np.sort(cov))


class TestTraceWorkload:
    def test_record_and_replay(self, rng):
        wl = make_workload()
        trace = TraceWorkload.record(wl, 5, rng)
        assert len(trace) == 5
        slot = trace.slot(2, rng)
        assert slot.t == 2

    def test_cyclic_replay(self, rng):
        trace = TraceWorkload.record(make_workload(), 3, rng)
        s4 = trace.slot(4, rng)
        np.testing.assert_array_equal(
            s4.tasks.contexts, trace.slots[1].tasks.contexts
        )
        assert s4.t == 4  # re-stamped with the requested slot index

    def test_replay_is_deterministic(self, rng):
        trace = TraceWorkload.record(make_workload(), 3, rng)
        a = trace.slot(1, np.random.default_rng(0))
        b = trace.slot(1, np.random.default_rng(99))
        np.testing.assert_array_equal(a.tasks.contexts, b.tasks.contexts)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload(slots=[])

    def test_inconsistent_scns_rejected(self, rng):
        a = make_workload(num_scns=2).slot(0, rng)
        b = make_workload(num_scns=3).slot(1, rng)
        with pytest.raises(ValueError, match="num_scns"):
            TraceWorkload(slots=[a, b])

    def test_max_coverage_size(self, rng):
        trace = TraceWorkload.record(make_workload(), 4, rng)
        expected = max(len(c) for s in trace.slots for c in s.coverage)
        assert trace.max_coverage_size() == expected
