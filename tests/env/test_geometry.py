"""Tests for repro.env.geometry — coverage models and mobility."""

import numpy as np
import pytest

from repro.env.geometry import (
    CoverageSampler,
    GeometricCoverage,
    TrajectoryMobility,
    random_waypoint_step,
)


class TestCoverageSampler:
    def test_coverage_sizes_in_range(self, rng):
        sampler = CoverageSampler(num_scns=5, k_min=10, k_max=20)
        n, cov = sampler.sample_slot(rng)
        assert len(cov) == 5
        for c in cov:
            assert 10 <= len(c) <= 20

    def test_indices_valid_and_unique(self, rng):
        sampler = CoverageSampler(num_scns=4, k_min=5, k_max=15)
        n, cov = sampler.sample_slot(rng)
        for c in cov:
            assert c.min() >= 0 and c.max() < n
            assert len(np.unique(c)) == len(c)

    def test_coverage_sorted(self, rng):
        sampler = CoverageSampler(num_scns=3, k_min=5, k_max=10)
        _, cov = sampler.sample_slot(rng)
        for c in cov:
            assert (np.diff(c) > 0).all()

    def test_overlap_controls_pool_size(self, rng):
        lo = CoverageSampler(num_scns=10, k_min=20, k_max=20, overlap=1.0)
        hi = CoverageSampler(num_scns=10, k_min=20, k_max=20, overlap=4.0)
        n_lo, _ = lo.sample_slot(rng)
        n_hi, _ = hi.sample_slot(rng)
        assert n_lo == 200
        assert n_hi == 50

    def test_pool_at_least_max_coverage(self, rng):
        # huge overlap would shrink the pool below k_max; it must be clamped.
        sampler = CoverageSampler(num_scns=2, k_min=30, k_max=30, overlap=100.0)
        n, cov = sampler.sample_slot(rng)
        assert n >= 30

    def test_max_coverage_size(self):
        assert CoverageSampler(k_min=35, k_max=100).max_coverage_size() == 100

    def test_paper_defaults(self):
        s = CoverageSampler()
        assert (s.num_scns, s.k_min, s.k_max) == (30, 35, 100)

    @pytest.mark.parametrize("bad", [{"k_min": 0}, {"k_min": 10, "k_max": 5}, {"overlap": 0.5}])
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            CoverageSampler(**bad)


class TestGeometricCoverage:
    def test_coverage_matches_distance(self, rng):
        geo = GeometricCoverage(num_scns=4, num_wds=50, area_km=4.0, radius_km=1.5)
        n, cov = geo.sample_slot(rng)
        assert n == 50
        scn_xy = geo.scn_positions
        wd_xy = geo.wd_positions
        for m, c in enumerate(cov):
            dists = np.linalg.norm(wd_xy - scn_xy[m], axis=1)
            np.testing.assert_array_equal(np.flatnonzero(dists <= 1.5), c)

    def test_positions_persist_between_slots(self, rng):
        geo = GeometricCoverage(num_scns=2, num_wds=10, speed_km=0.0)
        geo.sample_slot(rng)
        first = geo.wd_positions
        geo.sample_slot(rng)
        np.testing.assert_allclose(geo.wd_positions, first)  # zero speed

    def test_mobility_moves_wds(self, rng):
        geo = GeometricCoverage(num_scns=2, num_wds=10, speed_km=1.0)
        geo.sample_slot(rng)
        first = geo.wd_positions
        geo.sample_slot(rng)
        assert not np.allclose(geo.wd_positions, first)

    def test_reset_forgets_positions(self, rng):
        geo = GeometricCoverage(num_scns=2, num_wds=10)
        geo.sample_slot(rng)
        geo.reset()
        assert geo.wd_positions is None

    def test_scn_grid_inside_area(self):
        geo = GeometricCoverage(num_scns=7, area_km=5.0)
        xy = geo.scn_positions
        assert xy.shape == (7, 2)
        assert xy.min() >= 0.0 and xy.max() <= 5.0

    def test_max_coverage_size(self):
        assert GeometricCoverage(num_wds=123).max_coverage_size() == 123


class TestTrajectoryMobility:
    def _model(self, **kw):
        defaults = dict(
            num_scns=4, num_vehicles=30, area_km=4.0, radius_km=1.5, roads_per_axis=4
        )
        defaults.update(kw)
        return TrajectoryMobility(**defaults)

    def test_coverage_matches_distance(self, rng):
        traj = self._model()
        n, cov = traj.sample_slot(rng)
        assert n == 30
        xy = traj.vehicle_positions()
        for m, c in enumerate(cov):
            dists = np.linalg.norm(xy - traj.scn_positions[m], axis=1)
            np.testing.assert_array_equal(np.flatnonzero(dists <= 1.5), c)

    def test_vehicles_stay_on_roads(self, rng):
        traj = self._model()
        spacing = 4.0 / 4
        for _ in range(10):
            traj.sample_slot(rng)
            xy = traj.vehicle_positions()
            # every vehicle sits on a horizontal or vertical road line
            on_line = np.zeros(len(xy), dtype=bool)
            for coord in (xy[:, 0], xy[:, 1]):
                frac = coord / spacing - 0.5
                on_line |= np.abs(frac - np.round(frac)) < 1e-9
            assert on_line.all()
            assert xy.min() >= 0.0 and xy.max() <= 4.0

    def test_vehicles_move(self, rng):
        traj = self._model(turn_prob=0.0, speed_min_km=0.2, speed_max_km=0.4)
        traj.sample_slot(rng)
        first = traj.vehicle_positions()
        traj.sample_slot(rng)
        assert not np.allclose(traj.vehicle_positions(), first)

    def test_fixed_draw_count_per_step(self):
        # The stream layout must not depend on the turn realization: two
        # models with different turn_prob consume identical stream amounts.
        probe_a, probe_b = np.random.default_rng(5), np.random.default_rng(5)
        never = self._model(turn_prob=0.0)
        always = self._model(turn_prob=1.0)
        for _ in range(5):
            never.sample_slot(probe_a)
            always.sample_slot(probe_b)
        # after identical consumption the generators are in the same state
        assert probe_a.bit_generator.state == probe_b.bit_generator.state

    def test_deterministic_given_stream(self):
        a, b = self._model(), self._model()
        rng_a, rng_b = np.random.default_rng(11), np.random.default_rng(11)
        for _ in range(5):
            _, cov_a = a.sample_slot(rng_a)
            _, cov_b = b.sample_slot(rng_b)
            for ca, cb in zip(cov_a, cov_b):
                np.testing.assert_array_equal(ca, cb)

    def test_reset_forgets_fleet(self, rng):
        traj = self._model()
        traj.sample_slot(rng)
        traj.reset()
        assert traj.vehicle_positions() is None

    def test_state_roundtrip(self, rng):
        traj = self._model()
        for _ in range(3):
            traj.sample_slot(rng)
        state = traj.state_dict()
        clone = self._model()
        clone.restore_state(state)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        _, cov_a = traj.sample_slot(rng_a)
        _, cov_b = clone.sample_slot(rng_b)
        for ca, cb in zip(cov_a, cov_b):
            np.testing.assert_array_equal(ca, cb)

    def test_state_roundtrip_uninitialized(self):
        traj = self._model()
        state = traj.state_dict()
        assert state == {"initialized": 0}
        clone = self._model()
        clone.restore_state(state)
        assert clone.vehicle_positions() is None

    def test_max_coverage_size(self):
        assert self._model(num_vehicles=17).max_coverage_size() == 17

    @pytest.mark.parametrize(
        "bad",
        [
            {"turn_prob": 1.5},
            {"speed_min_km": 0.5, "speed_max_km": 0.1},
            {"roads_per_axis": 0},
        ],
    )
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            self._model(**bad)


class TestRandomWaypointStep:
    def test_positions_stay_in_area(self, rng):
        pos = rng.uniform(0, 10, size=(100, 2))
        for _ in range(20):
            pos = random_waypoint_step(pos, 3.0, 10.0, rng)
            assert pos.min() >= 0.0 and pos.max() <= 10.0

    def test_step_bounded(self, rng):
        pos = np.full((50, 2), 5.0)
        moved = random_waypoint_step(pos, 0.5, 10.0, rng)
        assert np.linalg.norm(moved - pos, axis=1).max() <= 0.5 + 1e-12

    def test_zero_step_is_identity(self, rng):
        pos = rng.uniform(0, 10, size=(10, 2))
        np.testing.assert_allclose(random_waypoint_step(pos, 0.0, 10.0, rng), pos)
