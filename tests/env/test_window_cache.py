"""Cross-run window cache: bit-equivalence, state restoration, transport.

The cache's contract (DESIGN.md §9): sharing precomputed windows across
policies, sweep points, engines, and worker processes changes *nothing* —
every trajectory is bit-identical to a cold run — because keys are
content-addressed over the window's inputs and a hit restores the live
workload stream (RNG state + id cursor) to the exact post-window position.
"""

import numpy as np
import pytest

from repro.env.window_cache import (
    WindowCache,
    export_window_state,
    import_window_state,
    partition_token,
    prefill_windows,
    release_window_state,
    reset_shared_window_cache,
    shared_window_cache,
    window_key_base,
)
from repro.experiments.runner import ExperimentConfig, run_experiment


@pytest.fixture(autouse=True)
def _fresh_shared_cache():
    reset_shared_window_cache()
    yield
    reset_shared_window_cache()


def _cfg(**kw):
    base = dict(
        horizon=60, num_scns=3, k_min=5, k_max=10, seed=5, window=10,
        oracle_cache=False,
    )
    base.update(kw)
    return ExperimentConfig(**base)


def _rewards(results):
    return {k: r.reward.tobytes() for k, r in results.items()}


class TestEquivalence:
    def test_shared_on_equals_off_serial(self):
        warm = run_experiment(_cfg(), ["LFSC", "vUCB"], workers=None)
        cold = run_experiment(
            _cfg(shared_window=False), ["LFSC", "vUCB"], workers=None
        )
        assert _rewards(warm) == _rewards(cold)

    def test_shared_on_equals_off_both_engines(self):
        for engine in ("batched", "reference"):
            reset_shared_window_cache()
            cfg = _cfg().with_lfsc_overrides(engine=engine)
            warm = run_experiment(cfg, ["LFSC"], workers=None)
            cold = run_experiment(
                _cfg(shared_window=False).with_lfsc_overrides(engine=engine),
                ["LFSC"],
                workers=None,
            )
            assert _rewards(warm) == _rewards(cold), engine

    def test_parallel_prefill_equals_serial(self):
        serial = run_experiment(_cfg(), ["LFSC", "vUCB"], workers=None)
        reset_shared_window_cache()
        parallel = run_experiment(_cfg(), ["LFSC", "vUCB"], workers=2)
        assert _rewards(serial) == _rewards(parallel)

    def test_hits_and_misses_stay_bit_identical(self):
        """A run that hits for some windows and misses for others matches a
        fully cold run — the restored stream state keeps later misses in
        sync."""
        from repro.experiments.runner import build_simulation, make_policy

        cfg = _cfg()
        sim = build_simulation(cfg)
        # Warm only the first half of the horizon's windows.
        policy = make_policy("LFSC", cfg, sim.truth)
        part = getattr(policy, "context_partition", None)
        prefill_windows(
            shared_window_cache(), sim.workload, sim.truth, cfg.seed,
            horizon=30, window_size=10, partition=part,
        )
        half_warm = sim.run(policy, horizon=cfg.horizon, window=10)
        cold = run_experiment(
            _cfg(shared_window=False), ["LFSC"], workers=None
        )["LFSC"]
        assert half_warm.reward.tobytes() == cold.reward.tobytes()
        assert shared_window_cache().hits > 0
        assert shared_window_cache().misses > 0


class TestAccounting:
    def test_second_policy_with_same_partition_hits(self):
        run_experiment(_cfg(), ["LFSC"], workers=None)
        cache = shared_window_cache()
        misses = cache.misses
        assert cache.hits == 0 and misses > 0
        run_experiment(_cfg(), ["LFSC"], workers=None)
        assert cache.hits == misses
        assert cache.misses == misses

    def test_alpha_change_shares_windows(self):
        run_experiment(_cfg(alpha=15.0), ["LFSC"], workers=None)
        cache = shared_window_cache()
        misses = cache.misses
        run_experiment(_cfg(alpha=13.0), ["LFSC"], workers=None)
        assert cache.hits == misses

    def test_seed_change_cannot_hit(self):
        run_experiment(_cfg(seed=5), ["LFSC"], workers=None)
        cache = shared_window_cache()
        run_experiment(_cfg(seed=6), ["LFSC"], workers=None)
        assert cache.hits == 0

    def test_budget_refuses_oversized_entries(self):
        cache = WindowCache(max_slots=5)
        run = run_experiment  # noqa: F841 - documentation of scope
        from repro.experiments.runner import build_simulation

        cfg = _cfg()
        sim = build_simulation(cfg)
        walked = prefill_windows(
            cache, sim.workload, sim.truth, cfg.seed,
            horizon=cfg.horizon, window_size=10,
        )
        assert walked == cfg.horizon
        assert cache.slots_cached <= 5 or cache.slots_cached == 0


class TestKeying:
    def test_uncacheable_workload_returns_none(self):
        from repro.experiments.runner import build_simulation
        from repro.utils.rng import RngFactory

        cfg = _cfg()
        sim = build_simulation(cfg)

        class Stateful:
            def reset(self):  # a mobility model: windows depend on history
                pass

        sim.workload.coverage_model.reset = Stateful().reset
        try:
            assert sim.workload.cache_token() is None
            assert (
                window_key_base(RngFactory(0), sim.workload, sim.truth, None)
                is None
            )
        finally:
            del sim.workload.coverage_model.reset

    def test_partition_token_is_a_value_token(self):
        from repro.core.hypercube import ContextPartition

        a = partition_token(ContextPartition(dims=3, parts=3))
        b = partition_token(ContextPartition(dims=3, parts=3))
        c = partition_token(ContextPartition(dims=3, parts=4))
        assert a == b != c
        assert partition_token(None) is None


class TestTransport:
    def test_export_import_round_trip(self):
        from repro.experiments.runner import build_simulation

        cfg = _cfg()
        sim = build_simulation(cfg)
        prefill_windows(
            shared_window_cache(), sim.workload, sim.truth, cfg.seed,
            horizon=cfg.horizon, window_size=10,
        )
        entries_before = shared_window_cache().entries()
        handle = export_window_state()
        assert handle is not None
        try:
            reset_shared_window_cache()
            added = import_window_state(handle)
            assert added == len(entries_before)
            after = {k for k, *_ in shared_window_cache().entries()}
            assert after == {k for k, *_ in entries_before}
        finally:
            release_window_state(handle)

    def test_empty_cache_exports_none(self):
        assert export_window_state() is None
        assert import_window_state(None) == 0
        release_window_state(None)  # no-op
