"""Tests for repro.env.mbs — the macrocell fallback (§3.3)."""

import numpy as np
import pytest

from repro.env.mbs import MBSFallback
from repro.env.processes import PiecewiseConstantTruth
from repro.env.simulator import Assignment
from repro.env.tasks import TaskBatch
from repro.env.workload import SlotWorkload

from tests.conftest import make_slot


def truth():
    return PiecewiseConstantTruth(num_scns=2, dims=3, cells_per_dim=2, seed=0)


class TestLeftoverTasks:
    def test_unselected_covered_tasks(self, rng):
        slot = make_slot(rng.random((5, 3)), [[0, 1, 2], [2, 3]])
        assignment = Assignment(scn=np.array([0]), task=np.array([1]))
        mbs = MBSFallback()
        leftovers = mbs.leftover_tasks(slot, assignment)
        np.testing.assert_array_equal(leftovers, [0, 2, 3])  # 4 uncovered, 1 taken

    def test_uncovered_tasks_excluded(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0], [1]])
        leftovers = MBSFallback().leftover_tasks(slot, Assignment.empty())
        np.testing.assert_array_equal(leftovers, [0, 1])

    def test_everything_selected_leaves_nothing(self, rng):
        slot = make_slot(rng.random((2, 3)), [[0], [1]])
        assignment = Assignment(scn=np.array([0, 1]), task=np.array([0, 1]))
        assert MBSFallback().leftover_tasks(slot, assignment).size == 0


class TestServe:
    def test_serves_up_to_capacity(self, rng):
        slot = make_slot(rng.random((30, 3)), [list(range(30))])
        mbs = MBSFallback(capacity=5)
        result = mbs.serve(slot, Assignment.empty(), truth(), rng)
        assert result.num_served == 5

    def test_prefers_large_inputs(self, rng):
        contexts = rng.random((6, 3))
        inputs = np.array([1.0, 9.0, 2.0, 8.0, 3.0, 7.0])
        batch = TaskBatch(contexts=contexts, input_mbit=inputs)
        slot = SlotWorkload(t=0, tasks=batch, coverage=[np.arange(6)])
        mbs = MBSFallback(capacity=3)
        result = mbs.serve(slot, Assignment.empty(), truth(), rng)
        np.testing.assert_array_equal(np.sort(result.served_tasks), [1, 3, 5])

    def test_reward_discounted(self, rng):
        slot = make_slot(rng.random((20, 3)), [list(range(20))])
        full = MBSFallback(capacity=20, reward_factor=1.0, completion_prob=1.0)
        half = MBSFallback(capacity=20, reward_factor=0.5, completion_prob=1.0)
        r_full = full.serve(slot, Assignment.empty(), truth(), np.random.default_rng(1))
        r_half = half.serve(slot, Assignment.empty(), truth(), np.random.default_rng(1))
        assert r_half.reward == pytest.approx(0.5 * r_full.reward)

    def test_completion_prob_zero_no_reward(self, rng):
        slot = make_slot(rng.random((10, 3)), [list(range(10))])
        mbs = MBSFallback(completion_prob=0.0)
        result = mbs.serve(slot, Assignment.empty(), truth(), rng)
        assert result.reward == 0.0
        assert result.completed == 0.0

    def test_empty_leftovers(self, rng):
        slot = make_slot(rng.random((1, 3)), [[0]])
        assignment = Assignment(scn=np.array([0]), task=np.array([0]))
        result = MBSFallback().serve(slot, assignment, truth(), rng)
        assert result.num_served == 0
        assert result.reward == 0.0

    @pytest.mark.parametrize(
        "bad", [{"capacity": 0}, {"reward_factor": 1.5}, {"completion_prob": -0.1}]
    )
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            MBSFallback(**bad)
