"""Tests for repro.env.network — constraint configuration."""

import pytest

from repro.env.network import NetworkConfig


class TestNetworkConfig:
    def test_paper_defaults(self):
        cfg = NetworkConfig()
        assert cfg.num_scns == 30
        assert cfg.capacity == 20
        assert cfg.alpha == 15.0
        assert cfg.beta == 27.0

    def test_alpha_cannot_exceed_capacity(self):
        with pytest.raises(ValueError, match="alpha"):
            NetworkConfig(capacity=5, alpha=6.0)

    def test_alpha_equal_capacity_allowed(self):
        NetworkConfig(capacity=5, alpha=5.0)

    def test_scaled_overrides(self):
        cfg = NetworkConfig().scaled(alpha=13.0)
        assert cfg.alpha == 13.0
        assert cfg.capacity == 20  # untouched

    def test_scaled_returns_new_object(self):
        base = NetworkConfig()
        assert base.scaled(beta=30.0) is not base
        assert base.beta == 27.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NetworkConfig().alpha = 1.0  # type: ignore[misc]

    @pytest.mark.parametrize(
        "bad",
        [
            {"num_scns": 0},
            {"capacity": 0},
            {"alpha": -1.0},
            {"beta": -0.5},
        ],
    )
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            NetworkConfig(**bad)
