"""Tests for repro.env.channel — mmWave blockage dynamics."""

import numpy as np
import pytest

from repro.env.channel import AlwaysUpChannel, MarkovBlockage


class TestAlwaysUpChannel:
    def test_all_links_up(self, rng):
        ch = AlwaysUpChannel()
        up = ch.link_up(0, np.array([0, 1, 2]), np.array([5, 6, 7]), rng)
        np.testing.assert_array_equal(up, [1.0, 1.0, 1.0])


class TestMarkovBlockage:
    def test_starts_unblocked(self, rng):
        ch = MarkovBlockage(num_scns=4)
        assert not ch.blocked.any()
        up = ch.link_up(0, np.arange(4), np.arange(4), rng)
        np.testing.assert_array_equal(up, np.ones(4))

    def test_blockage_affects_whole_scn(self, rng):
        ch = MarkovBlockage(num_scns=3, p_block=1.0, p_recover=0.0)
        ch.advance(0, rng)
        assert ch.blocked.all()
        up = ch.link_up(1, np.array([0, 1, 2, 2]), np.array([0, 1, 2, 3]), rng)
        np.testing.assert_array_equal(up, np.zeros(4))

    def test_recovery(self, rng):
        ch = MarkovBlockage(num_scns=2, p_block=1.0, p_recover=1.0)
        ch.advance(0, rng)  # all blocked
        assert ch.blocked.all()
        ch.advance(1, rng)  # all recover (p_recover applies to blocked)
        assert not ch.blocked.any()

    def test_stationary_probability_formula(self):
        ch = MarkovBlockage(p_block=0.1, p_recover=0.4)
        assert ch.stationary_block_probability() == pytest.approx(0.2)

    def test_stationary_probability_empirical(self, rng):
        ch = MarkovBlockage(num_scns=50, p_block=0.05, p_recover=0.2)
        samples = []
        for t in range(4000):
            ch.advance(t, rng)
            samples.append(ch.blocked.mean())
        assert abs(np.mean(samples[500:]) - 0.2) < 0.03

    def test_degenerate_probabilities(self):
        assert MarkovBlockage(p_block=0.0, p_recover=0.0).stationary_block_probability() == 0.0

    @pytest.mark.parametrize("bad", [{"p_block": -0.1}, {"p_recover": 1.2}])
    def test_invalid_params(self, bad):
        with pytest.raises(ValueError):
            MarkovBlockage(**bad)
