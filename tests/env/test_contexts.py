"""Tests for repro.env.contexts — the context space and feature model."""

import numpy as np
import pytest

from repro.env.contexts import ContextSpace, ResourceType, TaskFeatureModel


class TestContextSpace:
    def test_contains_inside(self):
        space = ContextSpace(dims=2)
        mask = space.contains(np.array([[0.5, 0.5], [0.0, 1.0]]))
        assert mask.tolist() == [True, True]

    def test_contains_outside(self):
        space = ContextSpace(dims=2)
        mask = space.contains(np.array([[1.5, 0.5], [-0.1, 0.5]]))
        assert mask.tolist() == [False, False]

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="dims"):
            ContextSpace(dims=3).contains(np.zeros((2, 2)))

    def test_clip(self):
        space = ContextSpace(dims=1)
        out = space.clip(np.array([[-0.5], [2.0]]))
        np.testing.assert_array_equal(out, [[0.0], [1.0]])

    def test_names_length_validated(self):
        with pytest.raises(ValueError):
            ContextSpace(dims=2, names=("a",))

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            ContextSpace(dims=0)


class TestTaskFeatureModel:
    def test_sample_features_ranges(self, rng):
        model = TaskFeatureModel()
        inputs, outputs, resources = model.sample_features(500, rng)
        assert inputs.min() >= 5.0 and inputs.max() <= 20.0
        assert outputs.min() >= 1.0 and outputs.max() <= 4.0
        assert set(np.unique(resources)) <= {0, 1, 2}

    def test_sample_contexts_in_unit_cube(self, rng):
        model = TaskFeatureModel()
        ctx = model.sample_contexts(200, rng)
        assert ctx.shape == (200, 3)
        assert ctx.min() >= 0.0 and ctx.max() <= 1.0

    def test_normalize_endpoints(self):
        model = TaskFeatureModel()
        ctx = model.normalize(
            np.array([5.0, 20.0]), np.array([1.0, 4.0]), np.array([0, 2])
        )
        np.testing.assert_allclose(ctx[0], [0.0, 0.0, 0.0])
        np.testing.assert_allclose(ctx[1], [1.0, 1.0, 1.0])

    def test_resource_maps_to_three_levels(self):
        model = TaskFeatureModel()
        ctx = model.normalize(
            np.full(3, 10.0), np.full(3, 2.0), np.array([0, 1, 2])
        )
        np.testing.assert_allclose(ctx[:, 2], [0.0, 0.5, 1.0])

    def test_denormalize_roundtrip(self, rng):
        model = TaskFeatureModel()
        inputs, outputs, resources = model.sample_features(100, rng)
        ctx = model.normalize(inputs, outputs, resources)
        back_in, back_out, back_res = model.denormalize(ctx)
        np.testing.assert_allclose(back_in, inputs, rtol=1e-12)
        np.testing.assert_allclose(back_out, outputs, rtol=1e-12)
        np.testing.assert_array_equal(back_res, resources)

    def test_sample_zero(self, rng):
        model = TaskFeatureModel()
        inputs, outputs, resources = model.sample_features(0, rng)
        assert len(inputs) == len(outputs) == len(resources) == 0

    def test_negative_count_raises(self, rng):
        with pytest.raises(ValueError):
            TaskFeatureModel().sample_features(-1, rng)

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError, match="resource_probs"):
            TaskFeatureModel(resource_probs=(0.5, 0.5, 0.5))

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            TaskFeatureModel(input_mbit=(20.0, 5.0))

    def test_resource_probs_respected(self, rng):
        model = TaskFeatureModel(resource_probs=(1.0, 0.0, 0.0))
        _, _, resources = model.sample_features(50, rng)
        assert (resources == ResourceType.CPU).all()
