"""Tests for repro.env.simulator — assignments, feedback, and the loop."""

import numpy as np
import pytest

from repro.baselines.random_policy import RandomPolicy
from repro.core.base import OffloadingPolicy
from repro.env.channel import MarkovBlockage
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.network import NetworkConfig
from repro.env.processes import PiecewiseConstantTruth
from repro.env.simulator import Assignment, Simulation, SlotFeedback
from repro.env.workload import SyntheticWorkload

from tests.conftest import make_slot


def tiny_sim(**kw) -> Simulation:
    params = dict(
        network=NetworkConfig(num_scns=3, capacity=2, alpha=1.0, beta=3.0),
        workload=SyntheticWorkload(
            features=TaskFeatureModel(),
            coverage_model=CoverageSampler(num_scns=3, k_min=4, k_max=8),
        ),
        truth=PiecewiseConstantTruth(num_scns=3, dims=3, cells_per_dim=2, seed=1),
        seed=0,
    )
    params.update(kw)
    return Simulation(**params)


class TestAssignment:
    def test_empty(self):
        a = Assignment.empty()
        assert len(a) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Assignment(scn=np.array([0]), task=np.array([0, 1]))

    def test_tasks_of(self):
        a = Assignment(scn=np.array([0, 1, 0]), task=np.array([3, 4, 5]))
        np.testing.assert_array_equal(a.tasks_of(0), [3, 5])
        np.testing.assert_array_equal(a.tasks_of(2), [])

    def test_validate_accepts_legal(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0, 1], [2, 3], [1, 2]])
        Assignment(scn=np.array([0, 1]), task=np.array([0, 2])).validate(slot, 2)

    def test_validate_duplicate_task(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0, 1], [0, 3], [1, 2]])
        with pytest.raises(ValueError, match="1b"):
            Assignment(scn=np.array([0, 1]), task=np.array([0, 0])).validate(slot, 2)

    def test_validate_capacity(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0, 1, 2], [2, 3], [1, 2]])
        with pytest.raises(ValueError, match="1a"):
            Assignment(scn=np.array([0, 0, 0]), task=np.array([0, 1, 2])).validate(slot, 2)

    def test_validate_coverage(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0, 1], [2, 3], [1, 2]])
        with pytest.raises(ValueError, match="coverage"):
            Assignment(scn=np.array([0]), task=np.array([3])).validate(slot, 2)

    def test_validate_coverage_reports_lowest_violating_scn(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0, 1], [2, 3], [1, 2]])
        with pytest.raises(ValueError, match="SCN 1 assigned"):
            Assignment(scn=np.array([2, 1]), task=np.array([1, 0])).validate(slot, 2)

    def test_validate_unsorted_coverage_lists(self, rng):
        # The sorted-membership check must not assume sorted coverage input.
        slot = make_slot(rng.random((4, 3)), [[1, 0], [3, 2], [2, 1]])
        Assignment(scn=np.array([0, 1]), task=np.array([0, 2])).validate(slot, 2)

    def test_validate_all_coverage_empty(self, rng):
        slot = make_slot(rng.random((4, 3)), [[], [], []])
        with pytest.raises(ValueError, match="coverage"):
            Assignment(scn=np.array([1]), task=np.array([0])).validate(slot, 2)

    def test_validate_out_of_range_indices(self, rng):
        slot = make_slot(rng.random((4, 3)), [[0, 1], [2, 3], [1, 2]])
        with pytest.raises(ValueError, match="task index"):
            Assignment(scn=np.array([0]), task=np.array([9])).validate(slot, 2)
        with pytest.raises(ValueError, match="SCN index"):
            Assignment(scn=np.array([7]), task=np.array([0])).validate(slot, 2)


class TestSlotFeedback:
    def test_per_scn_aggregates(self):
        a = Assignment(scn=np.array([0, 0, 2]), task=np.array([1, 2, 3]))
        fb = SlotFeedback(
            assignment=a,
            u=np.array([1.0, 0.5, 0.2]),
            v=np.array([1.0, 0.0, 1.0]),
            q=np.array([1.5, 1.0, 2.0]),
            g=np.array([0.66, 0.0, 0.1]),
        )
        np.testing.assert_allclose(fb.per_scn_completed(3), [1.0, 0.0, 1.0])
        np.testing.assert_allclose(fb.per_scn_consumption(3), [2.5, 0.0, 2.0])
        np.testing.assert_allclose(fb.per_scn_reward(3), [0.66, 0.0, 0.1])


class TestSimulation:
    def test_result_shapes(self):
        sim = tiny_sim()
        res = sim.run(RandomPolicy(), 10)
        assert res.horizon == 10
        assert res.reward.shape == (10,)
        assert res.completed.shape == (10, 3)
        assert res.accepted.shape == (10, 3)

    def test_deterministic_given_seed(self):
        r1 = tiny_sim().run(RandomPolicy(), 20)
        r2 = tiny_sim().run(RandomPolicy(), 20)
        np.testing.assert_array_equal(r1.reward, r2.reward)

    def test_same_sim_reruns_identically(self):
        sim = tiny_sim()
        r1 = sim.run(RandomPolicy(), 15)
        r2 = sim.run(RandomPolicy(), 15)
        np.testing.assert_array_equal(r1.reward, r2.reward)

    def test_realized_violations_consistent_with_counts(self):
        sim = tiny_sim()
        res = sim.run(RandomPolicy(), 25)
        expect_qos = np.maximum(1.0 - res.completed, 0.0).sum(axis=1)
        np.testing.assert_allclose(res.violation_qos_realized, expect_qos)
        expect_res = np.maximum(res.consumption - 3.0, 0.0).sum(axis=1)
        np.testing.assert_allclose(res.violation_resource_realized, expect_res)

    def test_expected_violations_recorded_and_less_noisy(self):
        sim = tiny_sim()
        res = sim.run(RandomPolicy(), 200)
        assert res.has_expected
        # Expected-basis series differ from realized and have lower variance
        # (the Bernoulli noise is integrated out).
        assert not np.allclose(res.violation_qos, res.violation_qos_realized)
        assert res.violation_qos.std() < res.violation_qos_realized.std() + 1e-9

    def test_record_expected_false_falls_back_to_realized(self):
        res = tiny_sim().run(RandomPolicy(), 10, record_expected=False)
        assert not res.has_expected
        np.testing.assert_array_equal(res.violation_qos, res.violation_qos_realized)

    def test_reward_nonnegative(self):
        res = tiny_sim().run(RandomPolicy(), 25)
        assert (res.reward >= 0.0).all()

    def test_accepted_within_capacity(self):
        res = tiny_sim().run(RandomPolicy(), 25)
        assert res.accepted.max() <= 2

    def test_expected_reward_recorded(self):
        res = tiny_sim().run(RandomPolicy(), 25)
        assert res.expected_reward.sum() > 0.0

    def test_record_expected_off(self):
        res = tiny_sim().run(RandomPolicy(), 10, record_expected=False)
        assert res.expected_reward.sum() == 0.0

    def test_channel_reduces_completions(self):
        base = tiny_sim().run(RandomPolicy(), 200)
        blocked = tiny_sim(
            channel=MarkovBlockage(num_scns=3, p_block=0.9, p_recover=0.1)
        ).run(RandomPolicy(), 200)
        assert blocked.completed.sum() < base.completed.sum()

    def test_invalid_policy_caught(self):
        class Cheater(OffloadingPolicy):
            name = "cheater"

            def select(self, slot):
                # Assign the same task to two SCNs (violates 1b) when possible.
                for i in range(len(slot.tasks)):
                    owners = [m for m, cov in enumerate(slot.coverage) if i in cov]
                    if len(owners) >= 2:
                        return Assignment(
                            scn=np.array(owners[:2]), task=np.array([i, i])
                        )
                return Assignment.empty()

        sim = tiny_sim(
            workload=SyntheticWorkload(
                coverage_model=CoverageSampler(num_scns=3, k_min=6, k_max=8, overlap=3.0)
            )
        )
        with pytest.raises(ValueError, match="1b"):
            sim.run(Cheater(), 5)

    def test_mismatched_scn_counts_rejected(self):
        with pytest.raises(ValueError, match="SCNs"):
            tiny_sim(
                workload=SyntheticWorkload(
                    coverage_model=CoverageSampler(num_scns=5, k_min=4, k_max=8)
                )
            )

    def test_summary_keys(self):
        res = tiny_sim().run(RandomPolicy(), 10)
        s = res.summary()
        for key in (
            "total_reward",
            "violation_qos",
            "violation_resource",
            "performance_ratio",
        ):
            assert key in s

    def test_cumulative_properties_monotone(self):
        res = tiny_sim().run(RandomPolicy(), 30)
        assert (np.diff(res.cumulative_reward) >= -1e-12).all()
        assert (np.diff(res.cumulative_violation_qos) >= -1e-12).all()

    def test_horizon_validated(self):
        with pytest.raises(ValueError):
            tiny_sim().run(RandomPolicy(), 0)
