"""Tests for the pair-wise ground-truth APIs (means_pairs et al.).

The simulator's expected-violation recording evaluates only the <= M·c
assigned pairs per slot; these tests pin the pair-wise results to the dense
``(M, n)`` tables — exactly for table-based truths (pure gathers), and to
floating-point reduction order for :class:`SmoothTruth` (einsum path).
"""

import numpy as np
import pytest

from repro.env.processes import (
    DriftingTruth,
    GroundTruth,
    PiecewiseConstantTruth,
    RegimeSwitchTruth,
    SmoothTruth,
)


@pytest.fixture
def pairs(rng):
    contexts = rng.random((40, 3))
    scn = rng.integers(0, 8, size=40)
    return contexts, scn


def dense_gather(truth, t, contexts, scn):
    rows = np.arange(len(scn))
    mu_u, p_v, mu_q = truth.means(t, contexts)
    exp_g = truth.expected_compound(t, contexts)
    return mu_u[scn, rows], p_v[scn, rows], mu_q[scn, rows], exp_g[scn, rows]


class TestPiecewiseConstantPairs:
    def test_pairs_match_dense_exactly(self, pairs):
        contexts, scn = pairs
        truth = PiecewiseConstantTruth(num_scns=8, seed=5)
        mu_u, p_v, mu_q, exp_g = dense_gather(truth, 0, contexts, scn)
        got_u, got_v, got_q = truth.means_pairs(0, contexts, scn)
        np.testing.assert_array_equal(got_u, mu_u)
        np.testing.assert_array_equal(got_v, p_v)
        np.testing.assert_array_equal(got_q, mu_q)
        np.testing.assert_array_equal(truth.expected_compound_pairs(0, contexts, scn), exp_g)

    def test_expected_inverse_q_pairs_match_dense(self, pairs):
        contexts, scn = pairs
        truth = PiecewiseConstantTruth(num_scns=8, seed=5)
        rows = np.arange(len(scn))
        dense = truth.expected_inverse_q(contexts)[scn, rows]
        np.testing.assert_array_equal(truth.expected_inverse_q_pairs(contexts, scn), dense)

    def test_degenerate_band_pairs(self, pairs):
        contexts, scn = pairs
        truth = PiecewiseConstantTruth(num_scns=8, q_band=1e-12, seed=5)
        got = truth.expected_inverse_q_pairs(contexts, scn)
        _, _, mu_q = truth.means_pairs(0, contexts, scn)
        np.testing.assert_allclose(got, 1.0 / mu_q, rtol=1e-9)

    def test_shape_mismatch_raises(self):
        truth = PiecewiseConstantTruth(num_scns=4, seed=0)
        with pytest.raises(ValueError):
            truth.means_pairs(0, np.random.default_rng(0).random((5, 3)), np.arange(3))


class TestSmoothPairs:
    def test_pairs_allclose_dense(self, pairs):
        contexts, scn = pairs
        truth = SmoothTruth(num_scns=8, seed=5)
        mu_u, p_v, mu_q, exp_g = dense_gather(truth, 0, contexts, scn)
        got_u, got_v, got_q = truth.means_pairs(0, contexts, scn)
        np.testing.assert_allclose(got_u, mu_u, rtol=1e-12)
        np.testing.assert_allclose(got_v, p_v, rtol=1e-12)
        np.testing.assert_allclose(got_q, mu_q, rtol=1e-12)
        np.testing.assert_allclose(
            truth.expected_compound_pairs(0, contexts, scn), exp_g, rtol=1e-12
        )


class TestNonStationaryDelegation:
    def test_drifting_delegates(self, pairs):
        contexts, scn = pairs
        truth = DriftingTruth(base=PiecewiseConstantTruth(num_scns=8, seed=5))
        _, _, _, exp_g = dense_gather(truth, 0, contexts, scn)
        np.testing.assert_array_equal(truth.expected_compound_pairs(0, contexts, scn), exp_g)
        truth.advance(0, np.random.default_rng(1))  # pairs track the walked table
        _, _, _, exp_g2 = dense_gather(truth, 1, contexts, scn)
        np.testing.assert_array_equal(truth.expected_compound_pairs(1, contexts, scn), exp_g2)

    def test_regime_switch_tracks_active_regime(self, pairs):
        contexts, scn = pairs
        truth = RegimeSwitchTruth(
            regime_a=PiecewiseConstantTruth(num_scns=8, seed=5),
            regime_b=PiecewiseConstantTruth(num_scns=8, seed=6),
            switch_prob=1.0,
        )
        before = truth.expected_compound_pairs(0, contexts, scn)
        truth.advance(0, np.random.default_rng(0))  # certain switch
        after = truth.expected_compound_pairs(1, contexts, scn)
        assert not np.array_equal(before, after)
        _, _, _, exp_g = dense_gather(truth, 1, contexts, scn)
        np.testing.assert_array_equal(after, exp_g)


class TestAbcFallback:
    def test_default_implementation_gathers_dense(self, pairs):
        contexts, scn = pairs

        class MinimalTruth(GroundTruth):
            num_scns = 8
            dims = 3

            def means(self, t, contexts):
                n = len(np.atleast_2d(contexts))
                base = np.arange(self.num_scns)[:, None] + np.zeros(n)
                return base, base + 0.5, base + 1.0

            def expected_compound(self, t, contexts):
                mu_u, p_v, mu_q = self.means(t, contexts)
                return mu_u * p_v / mu_q

            def realize(self, t, contexts, scn_idx, rng):
                raise NotImplementedError

        truth = MinimalTruth()
        _, _, _, exp_g = dense_gather(truth, 0, contexts, scn)
        np.testing.assert_array_equal(truth.expected_compound_pairs(0, contexts, scn), exp_g)
        got_u, _, _ = truth.means_pairs(0, contexts, scn)
        np.testing.assert_array_equal(got_u, scn.astype(float))
