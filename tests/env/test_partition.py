"""Tests for repro.env.partition — uniform grid indexing."""

import numpy as np
import pytest

from repro.env.partition import cell_centers, num_cells, uniform_cell_indices


class TestNumCells:
    def test_basic(self):
        assert num_cells(3, 3) == 27
        assert num_cells(2, 4) == 16
        assert num_cells(1, 5) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            num_cells(0, 3)


class TestUniformCellIndices:
    def test_corners(self):
        ctx = np.array([[0.0, 0.0], [1.0, 1.0]])
        idx = uniform_cell_indices(ctx, 2)
        assert idx[0] == 0
        assert idx[1] == 3  # last cell of a 2x2 grid

    def test_upper_boundary_belongs_to_last_cell(self):
        idx = uniform_cell_indices(np.array([[1.0]]), 4)
        assert idx[0] == 3

    def test_interior_boundary_belongs_to_upper_cell(self):
        # 0.5 with 2 parts lands in the second interval [0.5, 1].
        idx = uniform_cell_indices(np.array([[0.5]]), 2)
        assert idx[0] == 1

    def test_c_order_flattening(self):
        # digits (1, 0) with parts=3 -> flat = 1*3 + 0 = 3.
        idx = uniform_cell_indices(np.array([[0.4, 0.1]]), 3)
        assert idx[0] == 3

    def test_all_indices_in_range(self, rng):
        ctx = rng.random((1000, 3))
        idx = uniform_cell_indices(ctx, 3)
        assert idx.min() >= 0 and idx.max() < 27

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError, match=r"\[0,1\]"):
            uniform_cell_indices(np.array([[1.2]]), 3)
        with pytest.raises(ValueError):
            uniform_cell_indices(np.array([[-0.2]]), 3)

    def test_single_part_everything_in_cell_zero(self, rng):
        idx = uniform_cell_indices(rng.random((50, 2)), 1)
        assert (idx == 0).all()


class TestCellCenters:
    def test_count_and_range(self):
        centers = cell_centers(3, 2)
        assert centers.shape == (9, 2)
        assert centers.min() > 0.0 and centers.max() < 1.0

    def test_centers_map_back_to_own_cell(self):
        parts, dims = 4, 3
        centers = cell_centers(parts, dims)
        idx = uniform_cell_indices(centers, parts)
        np.testing.assert_array_equal(idx, np.arange(parts**dims))

    def test_one_cell(self):
        centers = cell_centers(1, 2)
        np.testing.assert_allclose(centers, [[0.5, 0.5]])
