"""Tests for repro.env.traces — trace IO and modulated arrival models."""

import numpy as np
import pytest

from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.traces import (
    BurstyCoverageSampler,
    DiurnalCoverageSampler,
    load_trace,
    save_trace,
)
from repro.env.workload import SyntheticWorkload, TraceWorkload


def recorded_trace(rng, n=4) -> TraceWorkload:
    wl = SyntheticWorkload(
        features=TaskFeatureModel(),
        coverage_model=CoverageSampler(num_scns=3, k_min=4, k_max=8),
    )
    return TraceWorkload.record(wl, n, rng)


class TestTraceIO:
    def test_roundtrip_contexts_and_coverage(self, rng, tmp_path):
        trace = recorded_trace(rng)
        path = save_trace(trace.slots, tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace.slots, loaded.slots):
            np.testing.assert_allclose(a.tasks.contexts, b.tasks.contexts)
            np.testing.assert_array_equal(a.tasks.ids, b.tasks.ids)
            for ca, cb in zip(a.coverage, b.coverage):
                np.testing.assert_array_equal(ca, cb)

    def test_roundtrip_aux_fields(self, rng, tmp_path):
        trace = recorded_trace(rng)
        loaded = load_trace(save_trace(trace.slots, tmp_path / "t.jsonl"))
        first = trace.slots[0].tasks
        loaded_first = loaded.slots[0].tasks
        np.testing.assert_allclose(loaded_first.input_mbit, first.input_mbit)
        np.testing.assert_array_equal(loaded_first.resource_type, first.resource_type)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_creates_parent_dirs(self, rng, tmp_path):
        trace = recorded_trace(rng, n=1)
        path = save_trace(trace.slots, tmp_path / "a" / "b" / "t.jsonl")
        assert path.exists()

    def test_loaded_trace_usable_in_simulation(self, rng, tmp_path):
        from repro.baselines.random_policy import RandomPolicy
        from repro.env.network import NetworkConfig
        from repro.env.processes import PiecewiseConstantTruth
        from repro.env.simulator import Simulation

        trace = recorded_trace(rng, n=5)
        loaded = load_trace(save_trace(trace.slots, tmp_path / "t.jsonl"))
        sim = Simulation(
            network=NetworkConfig(num_scns=3, capacity=2, alpha=1.0, beta=3.0),
            workload=loaded,
            truth=PiecewiseConstantTruth(num_scns=3, dims=3, cells_per_dim=2, seed=0),
            seed=0,
        )
        res = sim.run(RandomPolicy(), 10)  # cycles over the 5 recorded slots
        assert res.horizon == 10


class TestDiurnalCoverageSampler:
    def test_scale_range(self):
        sampler = DiurnalCoverageSampler(num_scns=2, period=100, depth=0.6)
        scales = [sampler.scale(t) for t in range(100)]
        assert min(scales) == pytest.approx(0.4, abs=1e-9)
        assert max(scales) == pytest.approx(1.0, abs=1e-3)

    def test_trough_at_period_start(self):
        sampler = DiurnalCoverageSampler(period=100, depth=0.5)
        assert sampler.scale(0) == pytest.approx(0.5)
        assert sampler.scale(50) == pytest.approx(1.0)

    def test_load_varies_over_day(self, rng):
        sampler = DiurnalCoverageSampler(
            num_scns=4, k_min=20, k_max=40, period=40, depth=0.8
        )
        sizes = []
        for _ in range(40):
            _, cov = sampler.sample_slot(rng)
            sizes.append(np.mean([len(c) for c in cov]))
        # Busy hour (middle of period) clearly above the night trough.
        assert np.mean(sizes[15:25]) > 1.5 * np.mean(sizes[:5] + sizes[-5:])

    def test_reset_restarts_clock(self, rng):
        sampler = DiurnalCoverageSampler(num_scns=2, period=10)
        sampler.sample_slot(rng)
        sampler.reset()
        assert sampler._t == 0

    def test_zero_depth_is_stationary(self, rng):
        sampler = DiurnalCoverageSampler(num_scns=2, k_min=10, k_max=10, depth=0.0)
        for t in range(5):
            _, cov = sampler.sample_slot(rng)
            assert all(len(c) == 10 for c in cov)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DiurnalCoverageSampler(depth=1.0)


class TestBurstyCoverageSampler:
    def test_burst_raises_load(self, rng):
        sampler = BurstyCoverageSampler(
            num_scns=3, k_min=10, k_max=10, p_burst=1.0, p_calm=0.0, burst_factor=3.0
        )
        _, cov = sampler.sample_slot(rng)  # enters burst immediately
        assert sampler.bursting
        assert all(len(c) == 30 for c in cov)

    def test_calm_returns(self, rng):
        sampler = BurstyCoverageSampler(p_burst=1.0, p_calm=1.0)
        sampler.sample_slot(rng)
        assert sampler.bursting
        sampler.sample_slot(rng)
        assert not sampler.bursting

    def test_never_bursts_with_zero_prob(self, rng):
        sampler = BurstyCoverageSampler(num_scns=2, k_min=5, k_max=8, p_burst=0.0)
        for _ in range(20):
            sampler.sample_slot(rng)
        assert not sampler.bursting

    def test_max_coverage_accounts_for_bursts(self):
        sampler = BurstyCoverageSampler(k_max=100, burst_factor=2.0)
        assert sampler.max_coverage_size() == 200

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            BurstyCoverageSampler(burst_factor=0.5)
