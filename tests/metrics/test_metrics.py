"""Tests for repro.metrics — regret, violations, ratio, summary."""

import numpy as np
import pytest

from repro.env.simulator import SimulationResult
from repro.metrics.ratio import performance_ratio, performance_ratio_series
from repro.metrics.regret import average_regret, regret_series, sublinearity_exponent
from repro.metrics.summary import comparison_rows, format_table
from repro.metrics.violations import (
    early_violation_ratio,
    per_slot_violation_rate,
    violation_series,
)


def make_result(
    name="p",
    reward=None,
    expected=None,
    viol_qos=None,
    viol_res=None,
    T=10,
    M=2,
) -> SimulationResult:
    zeros = np.zeros(T)
    return SimulationResult(
        policy_name=name,
        horizon=T,
        num_scns=M,
        reward=zeros if reward is None else np.asarray(reward, dtype=float),
        expected_reward=zeros if expected is None else np.asarray(expected, dtype=float),
        completed=np.zeros((T, M)),
        consumption=np.zeros((T, M)),
        accepted=np.zeros((T, M), dtype=np.int64),
        violation_qos=zeros if viol_qos is None else np.asarray(viol_qos, dtype=float),
        violation_resource=zeros if viol_res is None else np.asarray(viol_res, dtype=float),
    )


class TestRegret:
    def test_regret_series_definition(self):
        oracle = make_result(expected=np.full(10, 2.0))
        policy = make_result(expected=np.full(10, 1.5))
        series = regret_series(policy, oracle)
        np.testing.assert_allclose(series, 0.5 * np.arange(1, 11))

    def test_average_regret_converges_for_shrinking_gap(self):
        T = 1000
        gap = 1.0 / np.sqrt(np.arange(1, T + 1))  # sub-linear cumulative regret
        oracle = make_result(expected=np.ones(T) + gap, T=T)
        policy = make_result(expected=np.ones(T), T=T)
        avg = average_regret(policy, oracle)
        assert avg[-1] < avg[10]

    def test_horizon_mismatch_rejected(self):
        with pytest.raises(ValueError):
            regret_series(make_result(T=5), make_result(T=6))

    def test_sublinearity_exponent_sqrt(self):
        t = np.arange(1, 5001)
        series = 3.0 * np.sqrt(t)
        assert sublinearity_exponent(series) == pytest.approx(0.5, abs=0.02)

    def test_sublinearity_exponent_linear(self):
        t = np.arange(1, 5001)
        assert sublinearity_exponent(2.0 * t) == pytest.approx(1.0, abs=0.02)

    def test_negative_series_trivially_sublinear(self):
        series = -np.ones(100)
        assert sublinearity_exponent(series) < 0.5

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            sublinearity_exponent(np.ones(5))


class TestViolations:
    def test_series_kinds(self):
        r = make_result(viol_qos=np.ones(10), viol_res=np.full(10, 2.0))
        np.testing.assert_allclose(violation_series(r, kind="qos")[-1], 10.0)
        np.testing.assert_allclose(violation_series(r, kind="resource")[-1], 20.0)
        np.testing.assert_allclose(violation_series(r, kind="total")[-1], 30.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            violation_series(make_result(), kind="bogus")

    def test_per_slot_rate_detects_decrease(self):
        qos = np.concatenate([np.full(50, 4.0), np.full(50, 1.0)])
        r = make_result(viol_qos=qos, T=100)
        rate = per_slot_violation_rate(r, window=10, kind="qos")
        assert rate[0] == pytest.approx(4.0)
        assert rate[-1] == pytest.approx(1.0)

    def test_rate_window_larger_than_series_clamped(self):
        r = make_result(viol_qos=np.ones(10))
        rate = per_slot_violation_rate(r, window=100)
        assert rate.shape == (1,)

    def test_early_ratio(self):
        ours = make_result(viol_qos=np.ones(100), T=100)
        theirs = make_result(viol_qos=np.full(100, 4.0), T=100)
        ratio = early_violation_ratio(ours, theirs)
        assert ratio == pytest.approx(0.25)

    def test_early_ratio_nan_when_baseline_clean(self):
        ours = make_result(viol_qos=np.ones(100), T=100)
        theirs = make_result(T=100)
        assert np.isnan(early_violation_ratio(ours, theirs))

    def test_early_ratio_custom_window(self):
        ours = make_result(viol_qos=np.concatenate([np.zeros(50), np.ones(50)]), T=100)
        theirs = make_result(viol_qos=np.ones(100), T=100)
        assert early_violation_ratio(ours, theirs, early_slots=50) == 0.0


class TestRatio:
    def test_performance_ratio(self):
        r = make_result(reward=np.full(10, 2.0), viol_qos=np.ones(10))
        assert performance_ratio(r) == pytest.approx(20.0 / 11.0)

    def test_series_last_matches_scalar(self):
        r = make_result(reward=np.full(10, 2.0), viol_qos=np.ones(10))
        series = performance_ratio_series(r)
        assert series[-1] == pytest.approx(performance_ratio(r))

    def test_no_violations_ratio_is_reward_over_one(self):
        r = make_result(reward=np.ones(10))
        assert performance_ratio(r) == pytest.approx(10.0)


class TestSummary:
    def test_rows_vs_oracle(self):
        res = {
            "Oracle": make_result("Oracle", reward=np.full(10, 2.0)),
            "LFSC": make_result("LFSC", reward=np.full(10, 1.0)),
        }
        rows = comparison_rows(res)
        lfsc = next(r for r in rows if r["policy"] == "LFSC")
        assert lfsc["reward_vs_oracle"] == pytest.approx(0.5)

    def test_rows_without_oracle_nan(self):
        rows = comparison_rows({"A": make_result("A", reward=np.ones(10))})
        assert np.isnan(rows[0]["reward_vs_oracle"])

    def test_rows_accepts_iterable(self):
        rows = comparison_rows([make_result("X", reward=np.ones(10))])
        assert rows[0]["policy"] == "X"

    def test_format_table_alignment(self):
        rows = [{"a": 1.0, "b": "hello"}, {"a": 22.5, "b": "x"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "22.50" in text

    def test_format_table_column_selection(self):
        rows = [{"a": 1.0, "b": 2.0}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"


class TestFairness:
    def test_jain_even_allocation(self):
        from repro.metrics.fairness import jain_index

        assert jain_index(np.full(5, 3.0)) == pytest.approx(1.0)

    def test_jain_single_winner(self):
        from repro.metrics.fairness import jain_index

        assert jain_index(np.array([10.0, 0, 0, 0, 0])) == pytest.approx(0.2)

    def test_jain_zero_allocation(self):
        from repro.metrics.fairness import jain_index

        assert jain_index(np.zeros(4)) == 1.0

    def test_jain_bounds(self):
        from repro.metrics.fairness import jain_index

        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.random(8) * 10
            j = jain_index(x)
            assert 1.0 / 8 - 1e-12 <= j <= 1.0 + 1e-12

    def test_jain_validates(self):
        from repro.metrics.fairness import jain_index

        with pytest.raises(ValueError):
            jain_index(np.array([-1.0, 2.0]))

    def test_fairness_summary_keys(self):
        from repro.metrics.fairness import fairness_summary

        r = make_result(T=5, M=3)
        r.completed[:] = 1.0
        r.accepted[:] = 2
        r.consumption[:] = 1.5
        s = fairness_summary(r)
        assert s["jain_completed"] == pytest.approx(1.0)
        assert s["jain_accepted"] == pytest.approx(1.0)
        assert s["jain_consumption"] == pytest.approx(1.0)

    def test_fairness_on_simulation(self):
        from repro.experiments.runner import ExperimentConfig, run_experiment
        from repro.metrics.fairness import fairness_summary

        res = run_experiment(ExperimentConfig.tiny(horizon=30), ("Random",))
        s = fairness_summary(res["Random"])
        # A symmetric environment with random selection is near-fair.
        assert s["jain_accepted"] > 0.9
