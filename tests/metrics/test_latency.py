"""Latency percentiles: nearest-rank values, merge algebra, registry fold-in."""

import json

import numpy as np
import pytest

from repro.metrics.latency import (
    LatencyRecorder,
    LatencySummary,
    latency_summary,
    percentile,
)
from repro.obs.metrics import MetricsRegistry


class TestPercentile:
    def test_nearest_rank_values(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0
        # Nearest rank returns an observed sample, never an interpolation.
        assert percentile(samples, 0.9) in samples

    def test_single_sample(self):
        assert percentile([7.25], 0.99) == 7.25

    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile(np.empty(0), 0.99) == 0.0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], -0.1)

    def test_ndarray_input_yields_plain_float(self):
        """Fleet workers ship samples as ndarrays; the result must stay
        JSON-serializable (np.float64 is not)."""
        out = percentile(np.array([0.3, 0.1, 0.2]), 0.5)
        assert type(out) is float
        json.dumps(out)

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0


class TestLatencySummary:
    def test_summary_fields(self):
        s = latency_summary([0.010, 0.020, 0.030, 0.040])
        assert isinstance(s, LatencySummary)
        assert s.count == 4
        assert s.mean_s == pytest.approx(0.025)
        # Nearest rank with banker's rounding: round(0.5 · 3) = 2 → third sample.
        assert s.p50_s == 0.030
        assert s.p99_s == 0.040

    def test_empty_summary(self):
        s = latency_summary([])
        assert s.count == 0 and s.mean_s == 0.0 and s.p99_s == 0.0

    def test_as_dict_units(self):
        s = latency_summary([0.002])
        ms = s.as_dict(unit="ms")
        assert ms["p50_ms"] == pytest.approx(2.0)
        sec = s.as_dict(unit="s")
        assert sec["p50_s"] == pytest.approx(0.002)

    def test_as_dict_is_json_safe(self):
        json.dumps(latency_summary(np.array([0.001, 0.002])).as_dict())


class TestLatencyRecorder:
    def test_record_and_summary(self):
        r = LatencyRecorder()
        for v in (0.3, 0.1, 0.2):
            r.record(v)
        assert len(r) == 3
        assert r.summary().p50_s == 0.2

    def test_extend_coerces_to_float(self):
        r = LatencyRecorder()
        r.extend(np.array([0.5, 0.6]))
        assert all(type(s) is float for s in r.samples)

    def test_merge_is_associative(self):
        def rec(vals):
            r = LatencyRecorder()
            r.extend(vals)
            return r

        a, b, c = [0.1, 0.9], [0.5], [0.2, 0.8, 0.4]
        left = rec(a).merge(rec(b).merge(rec(c)))
        right = rec(a).merge(rec(b)).merge(rec(c))
        assert left.summary() == right.summary()
        # Order-insensitive too: quantiles sort, so grouping cannot matter.
        assert rec(c).merge(rec(a)).merge(rec(b)).summary() == left.summary()

    def test_merge_returns_self(self):
        r = LatencyRecorder()
        assert r.merge(LatencyRecorder(samples=[0.1])) is r
        assert len(r) == 1

    def test_observe_registry_folds_into_histogram(self):
        reg = MetricsRegistry()
        r = LatencyRecorder(samples=[0.001, 0.010, 0.100])
        r.observe_registry("fleet.decide_s", reg)
        hist = reg.histogram("fleet.decide_s")
        assert hist.total == 3
        assert hist.sum == pytest.approx(0.111)
