"""Service-protocol tests: ordering under concurrency, crash recovery, latency.

The daemon's contract: arrivals drain in (slot, admission) order no matter
which thread pushed them; a killed-and-restarted daemon resumes from its
last checkpoint and answers the next decision exactly as the uninterrupted
one would; decisions come back within a bounded (generous, smoke-level)
latency.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig
from repro.service import (
    ArrivalQueue,
    CheckpointError,
    OnlineSession,
    PolicyDaemon,
    ServiceClient,
    build_slot,
)

HORIZON = 20


def tiny_session(**overrides) -> OnlineSession:
    return OnlineSession(ExperimentConfig.tiny(horizon=HORIZON, **overrides))


# -- arrival ordering -------------------------------------------------------


def test_burst_preserves_slot_order():
    """Concurrent pushes drain sorted by (slot, admission seq)."""
    queue = ArrivalQueue()
    n_threads, per_thread = 8, 25
    barrier = threading.Barrier(n_threads)

    def blast(tid: int) -> None:
        rng = np.random.default_rng(tid)
        barrier.wait()
        for i in range(per_thread):
            queue.push(int(rng.integers(0, 5)), rng.random(3), [tid % 3])

    threads = [threading.Thread(target=blast, args=(tid,)) for tid in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()

    assert len(queue) == n_threads * per_thread
    drained = queue.drain(10)
    keys = [(a.slot, a.seq) for a in drained]
    assert keys == sorted(keys)
    # seq stamps are unique even under contention
    assert len({a.seq for a in drained}) == len(drained)
    assert len(queue) == 0


def test_drain_takes_only_due_slots():
    queue = ArrivalQueue()
    queue.push(3, [0.1, 0.2, 0.3], [0])
    queue.push(1, [0.4, 0.5, 0.6], [1])
    queue.push(5, [0.7, 0.8, 0.9], [0, 1])
    due = queue.drain(3)
    assert [a.slot for a in due] == [1, 3]
    assert queue.peek_slot() == 5


def test_build_slot_validates_and_indexes():
    queue = ArrivalQueue()
    queue.push(0, [0.1, 0.2, 0.3], [2, 0])
    queue.push(0, [0.9, 0.8, 0.7], [1])
    slot = build_slot(0, queue.drain(0), num_scns=3, dims=3)
    assert len(slot.tasks) == 2
    assert [c.tolist() for c in slot.coverage] == [[0], [1], [0]]
    with pytest.raises(ValueError, match="SCN"):
        build_slot(0, [{"context": [0.1, 0.2, 0.3], "scns": [9]}], num_scns=3, dims=3)
    with pytest.raises(ValueError, match="shape"):
        build_slot(0, [{"context": [0.1], "scns": [0]}], num_scns=3, dims=3)


def test_queue_rejects_bad_arrivals():
    queue = ArrivalQueue()
    with pytest.raises(ValueError):
        queue.push(0, [0.5, 1.5, 0.5], [0])  # context off the unit cube
    with pytest.raises(ValueError):
        queue.push(0, [0.5, 0.5, 0.5], [])  # uncovered task
    with pytest.raises(ValueError):
        queue.push(-1, [0.5, 0.5, 0.5], [0])  # negative slot


# -- protocol over TCP ------------------------------------------------------


def test_tcp_round_trip(tmp_path):
    daemon = PolicyDaemon(
        tiny_session(),
        checkpoint_path=tmp_path / "serve.ckpt",
        checkpoint_every=0,
    )
    host, port = daemon.start()
    try:
        with ServiceClient(host, port) as client:
            status = client.request({"op": "status"})
            assert status["ok"] and status["t"] == 0

            reply = client.request({"op": "decide"})
            assert reply["ok"]
            assert sorted(reply["assignment"]) == ["scn", "task"]
            assert "feedback" in reply  # auto_feedback mode

            arr = client.request(
                {"op": "arrive", "slot": 1, "context": [0.2, 0.4, 0.6], "scns": [0]}
            )
            assert arr["ok"]
            reply = client.request({"op": "decide"})
            assert reply["ok"] and reply["external_arrivals"] == 1

            bad = client.request({"op": "warp"})
            assert not bad["ok"] and bad["error"] == "protocol"

            ck = client.request({"op": "checkpoint"})
            assert ck["ok"] and ck["t"] == 2

            stop = client.request({"op": "stop"})
            assert stop["ok"] and stop["stopping"] and "path" in stop
    finally:
        daemon.close()


def test_malformed_json_gets_an_error_reply():
    daemon = PolicyDaemon(tiny_session())
    host, port = daemon.start()
    try:
        import json
        import socket

        with socket.create_connection((host, port), timeout=10) as sock:
            fh = sock.makefile("rwb")
            fh.write(b"this is not json\n")
            fh.flush()
            reply = json.loads(fh.readline())
            assert not reply["ok"] and reply["error"] == "protocol"
    finally:
        daemon.close()


def test_client_errors_do_not_kill_the_daemon():
    daemon = PolicyDaemon(tiny_session())
    try:
        bad = daemon.handle({"op": "arrive", "context": [2.0, 2.0, 2.0], "scns": [0]})
        assert not bad["ok"] and bad["error"] == "request"
        # Session unharmed: decisions still flow.
        assert daemon.handle({"op": "decide"})["ok"]
        # Horizon exhaustion is a clean request error too.
        for _ in range(HORIZON - 1):
            assert daemon.handle({"op": "decide"})["ok"]
        worn = daemon.handle({"op": "decide"})
        assert not worn["ok"] and "horizon" in worn["message"]
    finally:
        daemon.close()


# -- crash recovery ---------------------------------------------------------


def test_killed_daemon_resumes_identically(tmp_path):
    """kill (no checkpoint) → restart from autosave → identical decisions.

    The uninterrupted reference and the crashed+restored daemon must agree
    on every assignment after the restore point, bit for bit.
    """
    ckpt = tmp_path / "auto.ckpt"
    # Reference: never crashes.
    reference = PolicyDaemon(tiny_session())
    expected = [reference.handle({"op": "decide"}) for _ in range(HORIZON)]
    reference.close()

    # Victim: autosaves every 4 slots, killed at t=10 (last autosave t=8).
    victim = PolicyDaemon(tiny_session(), checkpoint_path=ckpt, checkpoint_every=4)
    for _ in range(10):
        assert victim.handle({"op": "decide"})["ok"]
    killed = victim.handle({"op": "kill"})
    assert killed["ok"] and killed["checkpointed"] is False
    victim.close()

    resumed_session = OnlineSession.from_checkpoint(ckpt)
    assert resumed_session.t == 8  # the last autosave, not the crash point
    restarted = PolicyDaemon(resumed_session)
    try:
        for t in range(8, HORIZON):
            reply = restarted.handle({"op": "decide"})
            assert reply["ok"]
            assert reply["assignment"] == expected[t]["assignment"], f"slot {t}"
            assert reply["feedback"] == expected[t]["feedback"], f"slot {t}"
    finally:
        restarted.close()


def test_stop_checkpoint_resumes_at_exact_slot(tmp_path):
    ckpt = tmp_path / "stop.ckpt"
    daemon = PolicyDaemon(tiny_session(), checkpoint_path=ckpt)
    for _ in range(7):
        daemon.handle({"op": "decide"})
    stop = daemon.handle({"op": "stop"})
    daemon.close()
    assert stop["ok"] and stop["path"] == str(ckpt)
    assert OnlineSession.from_checkpoint(ckpt).t == 7


def test_corrupt_checkpoint_fails_restart_cleanly(tmp_path):
    ckpt = tmp_path / "auto.ckpt"
    daemon = PolicyDaemon(tiny_session(), checkpoint_path=ckpt, checkpoint_every=2)
    for _ in range(4):
        daemon.handle({"op": "decide"})
    daemon.close()
    blob = bytearray(ckpt.read_bytes())
    blob[-10] ^= 0x01  # clip a bit inside the digest/payload tail
    ckpt.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError):
        OnlineSession.from_checkpoint(ckpt)


# -- latency smoke ----------------------------------------------------------


def test_decision_latency_smoke():
    """p99 decide latency stays under a generous bound on the tiny config."""
    daemon = PolicyDaemon(tiny_session())
    try:
        for _ in range(HORIZON):
            daemon.handle({"op": "decide"})
        status = daemon.handle({"op": "status"})
        assert status["decisions"] == HORIZON
        assert 0.0 <= status["latency_p50_ms"] <= status["latency_p99_ms"]
        # Smoke bound only — catches pathological regressions (e.g. a full
        # re-reset per decide), not micro-drift; bench_service.py measures.
        assert status["latency_p99_ms"] < 2000.0
    finally:
        daemon.close()
