"""Resume equivalence: checkpoint/restore is bit-identical to never stopping.

The PR's acceptance gate.  For both LFSC engines × both assignment modes ×
fixed/adaptive partitions × checkpoint slots k ∈ {0, 1, mid, last}: run a
session to slot k, snapshot, restore (same process here; a fresh process in
``test_fresh_process_resume``), drive both to the horizon, and require every
recorded series and the final policy state to match bit for bit.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys

import numpy as np
import pytest

from repro.core.adaptive import AdaptivePartition
from repro.experiments.runner import (
    ExperimentConfig,
    build_simulation,
    make_policy,
)
from repro.service import OnlineSession

HORIZON = 24

SERIES = (
    "reward",
    "expected_reward",
    "completed",
    "consumption",
    "accepted",
    "violation_qos",
    "violation_resource",
    "violation_qos_realized",
    "violation_resource_realized",
)


def make_config(engine: str, mode: str, adaptive: bool) -> ExperimentConfig:
    """One config per arm: adaptive partitions are stateful, never shared."""
    cfg = ExperimentConfig.tiny(horizon=HORIZON).with_lfsc_overrides(
        engine=engine, assignment_mode=mode
    )
    if adaptive:
        # Small tree + low threshold so splits actually happen within the
        # 24-slot horizon — the checkpoint must carry a *refined* tree.
        partition = AdaptivePartition(dims=cfg.dims, max_leaves=17, split_base=4.0)
        cfg = dataclasses.replace(
            cfg, lfsc=dataclasses.replace(cfg.lfsc_config(), partition=partition)
        )
    return cfg


def policy_name(adaptive: bool) -> str:
    return "LFSC-adaptive" if adaptive else "LFSC"


def assert_results_equal(a, b) -> None:
    for name in SERIES:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


ARMS = [
    (engine, mode, adaptive)
    for engine in ("batched", "reference")
    for mode in ("depround", "deterministic")
    for adaptive in (False, True)
]


@pytest.mark.parametrize("engine,mode,adaptive", ARMS)
@pytest.mark.parametrize("k", [0, 1, HORIZON // 2, HORIZON])
def test_resume_is_bit_identical(engine, mode, adaptive, k, tmp_path):
    """Checkpoint at slot k + restore ≡ an uninterrupted run, bitwise."""
    name = policy_name(adaptive)
    baseline = OnlineSession(make_config(engine, mode, adaptive), policy=name)
    baseline.run()

    first = OnlineSession(make_config(engine, mode, adaptive), policy=name)
    first.run(k)
    path = first.save(tmp_path / f"ck_{engine}_{mode}_{adaptive}_{k}.bin")

    resumed = OnlineSession.from_checkpoint(path)
    assert resumed.t == k
    resumed.run()

    assert_results_equal(baseline.result(), resumed.result())
    # The learned state converged to the same bits too, not just the series.
    base_state = baseline.policy.checkpoint_state()
    res_state = resumed.policy.checkpoint_state()
    assert base_state.keys() == res_state.keys()
    for key, value in base_state.items():
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, res_state[key]), key
        else:
            assert value == res_state[key], key


@pytest.mark.parametrize("engine,mode,adaptive", ARMS)
def test_session_matches_batch_simulator(engine, mode, adaptive):
    """The session's slot arithmetic is the simulator's per-slot path."""
    cfg = make_config(engine, mode, adaptive)
    sim = build_simulation(cfg)
    if adaptive:
        from repro.core.adaptive import AdaptiveLFSCPolicy

        policy = AdaptiveLFSCPolicy(cfg.lfsc_config(), partition=cfg.lfsc.partition)
    else:
        policy = make_policy("LFSC", cfg, sim.truth)
    ref = sim.run(policy, cfg.horizon, window=0)

    session = OnlineSession(make_config(engine, mode, adaptive), policy=policy_name(adaptive))
    assert_results_equal(ref, session.run().result())


_RESUME_SNIPPET = """
import sys
import numpy as np
from repro.service import OnlineSession

ckpt, out = sys.argv[1], sys.argv[2]
session = OnlineSession.from_checkpoint(ckpt)
session.run()
res = session.result()
np.savez(
    out,
    **{name: getattr(res, name) for name in (
        "reward", "expected_reward", "completed", "consumption", "accepted",
        "violation_qos", "violation_resource",
        "violation_qos_realized", "violation_resource_realized",
    )},
)
"""

# One arm per engine×mode at the midpoint, plus one adaptive arm: fresh-
# process restores are the expensive leg, in-process coverage is exhaustive
# above.
FRESH_ARMS = [
    ("batched", "depround", False),
    ("batched", "deterministic", False),
    ("reference", "depround", False),
    ("batched", "depround", True),
]


@pytest.mark.parametrize("engine,mode,adaptive", FRESH_ARMS)
def test_fresh_process_resume(engine, mode, adaptive, tmp_path):
    """Restoring in a brand-new interpreter reproduces the same bits.

    This is the daemon-crash story: nothing of the original process
    survives except the checkpoint file.
    """
    name = policy_name(adaptive)
    baseline = OnlineSession(make_config(engine, mode, adaptive), policy=name)
    baseline.run()

    first = OnlineSession(make_config(engine, mode, adaptive), policy=name)
    first.run(HORIZON // 2)
    ckpt = first.save(tmp_path / "mid.ckpt")

    out = tmp_path / "resumed.npz"
    subprocess.run(
        [sys.executable, "-c", _RESUME_SNIPPET, str(ckpt), str(out)],
        capture_output=True,
        text=True,
        check=True,
    )
    resumed = np.load(out)
    base = baseline.result()
    for series in SERIES:
        assert np.array_equal(getattr(base, series), resumed[series]), series


def test_checkpoint_rejects_mid_slot(tmp_path):
    """Between decide() and feedback() there is no serializable state."""
    from repro.service import CheckpointError

    session = OnlineSession(make_config("batched", "depround", False))
    session.decide()
    with pytest.raises(CheckpointError, match="pending"):
        session.save(tmp_path / "nope.bin")
    session.feedback()
    session.save(tmp_path / "ok.bin")  # boundary reached: fine again
