"""Property tests for the ``repro-checkpoint/v1`` container.

Round trips are byte-stable, and every way a file can be wrong — truncated,
bit-flipped, foreign, lying about its payload — fails with a clean typed
error before any value escapes, mirroring the ``solvers/cache.py`` on-disk
discipline.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays as np_arrays

from repro.experiments.runner import ExperimentConfig
from repro.service import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    OnlineSession,
    deserialize_checkpoint,
    read_checkpoint,
    serialize_checkpoint,
    write_checkpoint,
)

# -- strategies -------------------------------------------------------------

_scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=20),
    st.none(),
)

_headers = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(_scalars, st.lists(_scalars, max_size=4)),
    max_size=6,
)

_dtypes = st.sampled_from(
    [np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_]
)


def _array_strategy(dtype):
    if dtype == np.bool_:
        elements = st.booleans()
    elif np.issubdtype(dtype, np.floating):
        elements = st.floats(allow_nan=False, allow_infinity=False, width=32)
    else:
        info = np.iinfo(dtype)
        elements = st.integers(min_value=int(info.min), max_value=int(info.max))
    shapes = st.one_of(
        st.tuples(),
        st.tuples(st.integers(0, 5)),
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
    )
    return np_arrays(dtype=dtype, shape=shapes, elements=elements)


_array_dicts = st.dictionaries(
    st.text(min_size=1, max_size=12),
    _dtypes.flatmap(_array_strategy),
    max_size=5,
)


# -- round trips ------------------------------------------------------------


@given(header=_headers, arrs=_array_dicts)
@settings(max_examples=60, deadline=None)
def test_round_trip_preserves_everything(header, arrs):
    data = serialize_checkpoint(header, arrs)
    header2, arrs2 = deserialize_checkpoint(data)
    assert header2 == header
    assert set(arrs2) == set(arrs)
    for name, arr in arrs.items():
        out = arrs2[name]
        assert out.dtype == np.asarray(arr).dtype
        assert out.shape == np.asarray(arr).shape
        assert np.array_equal(out, arr)


@given(header=_headers, arrs=_array_dicts)
@settings(max_examples=60, deadline=None)
def test_serialization_is_byte_stable(header, arrs):
    """serialize → deserialize → serialize is the identity on bytes."""
    data = serialize_checkpoint(header, arrs)
    header2, arrs2 = deserialize_checkpoint(data)
    assert serialize_checkpoint(header2, arrs2) == data


# -- corruption: every failure is typed, nothing partial --------------------


@given(
    arrs=_array_dicts,
    cut=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_truncation_always_fails_cleanly(arrs, cut):
    data = serialize_checkpoint({"k": 1}, arrs)
    cut = min(cut, len(data) - 1)
    with pytest.raises(CheckpointError) as exc_info:
        deserialize_checkpoint(data[:cut])
    # Inside the magic prefix the file is unrecognizable (format error);
    # past it, the loss is detectable truncation (integrity error).
    expected = (
        CheckpointFormatError if cut < len(CHECKPOINT_MAGIC) else CheckpointIntegrityError
    )
    assert isinstance(exc_info.value, expected)


@given(
    pos_frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    bit=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_single_bit_flip_never_yields_data(pos_frac, bit):
    data = serialize_checkpoint(
        {"t": 7}, {"w": np.arange(12, dtype=np.float64).reshape(3, 4)}
    )
    pos = int(pos_frac * len(data))
    corrupted = bytearray(data)
    corrupted[pos] ^= 1 << bit
    with pytest.raises(CheckpointError):
        deserialize_checkpoint(bytes(corrupted))


def test_foreign_magic_is_a_format_error():
    with pytest.raises(CheckpointFormatError, match="bad magic"):
        deserialize_checkpoint(b"some-other-format/v9\n" + b"\x00" * 64)
    with pytest.raises(CheckpointFormatError, match="bad magic"):
        deserialize_checkpoint(b"")


def test_future_schema_is_a_format_error():
    """A future container bumps the magic line — v1 readers must balk."""
    data = serialize_checkpoint({}, {})
    upgraded = data.replace(CHECKPOINT_MAGIC, b"repro-checkpoint/v2\n", 1)
    with pytest.raises(CheckpointError):
        deserialize_checkpoint(upgraded)


def test_object_dtype_is_rejected_at_serialize_time():
    with pytest.raises(CheckpointFormatError, match="pickle-free"):
        serialize_checkpoint({}, {"bad": np.array([object()])})


def test_non_json_header_is_rejected():
    with pytest.raises(CheckpointFormatError):
        serialize_checkpoint({"x": float("nan")}, {})
    with pytest.raises(CheckpointFormatError):
        serialize_checkpoint({"x": {1, 2}}, {})


def test_declared_header_length_is_capped():
    """A corrupted length field must not allocate gigabytes."""
    bad = CHECKPOINT_MAGIC + (2**62).to_bytes(8, "big") + b"\x00" * 64
    with pytest.raises(CheckpointIntegrityError, match="cap"):
        deserialize_checkpoint(bad)


def test_missing_file_is_a_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="not found"):
        read_checkpoint(tmp_path / "absent.bin")


def test_write_is_atomic_no_temp_left_behind(tmp_path):
    target = tmp_path / "deep" / "ck.bin"
    write_checkpoint(target, {"t": 1}, {"w": np.ones(3)})
    write_checkpoint(target, {"t": 2}, {"w": np.ones(3) * 2})  # overwrite in place
    assert [p.name for p in target.parent.iterdir()] == ["ck.bin"]
    header, arrays = read_checkpoint(target)
    assert header["t"] == 2
    assert np.array_equal(arrays["w"], np.full(3, 2.0))


# -- a real session checkpoint obeys the same properties --------------------


def test_real_checkpoint_file_round_trips_byte_stable(tmp_path):
    session = OnlineSession(ExperimentConfig.tiny(horizon=8))
    session.run(5)
    path = session.save(tmp_path / "real.ckpt")
    data = path.read_bytes()
    assert data.startswith(CHECKPOINT_MAGIC)
    header, arrays = deserialize_checkpoint(data)
    assert serialize_checkpoint(header, arrays) == data


def test_corrupted_real_checkpoint_refuses_resume(tmp_path):
    """The daemon-restart path fails closed on a damaged file."""
    session = OnlineSession(ExperimentConfig.tiny(horizon=8))
    session.run(4)
    path = session.save(tmp_path / "real.ckpt")
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(CheckpointError):
        OnlineSession.from_checkpoint(path)
