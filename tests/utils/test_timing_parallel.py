"""Tests for repro.utils.timing and repro.utils.parallel."""

import time

import pytest

from repro.utils.parallel import (
    ParallelExecutionError,
    default_workers,
    parallel_map,
    process_pool_supported,
    resolve_workers,
)
from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_measure_accumulates(self):
        sw = Stopwatch()
        with sw.measure("phase"):
            time.sleep(0.01)
        with sw.measure("phase"):
            time.sleep(0.01)
        assert sw.totals()["phase"] >= 0.02
        assert sw.counts()["phase"] == 2

    def test_multiple_names(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 2.0)
        assert sw.totals() == {"a": 1.0, "b": 2.0}

    def test_report_sorted_by_total(self):
        sw = Stopwatch()
        sw.add("small", 0.1)
        sw.add("big", 5.0)
        report = sw.report()
        assert report.index("big") < report.index("small")

    def test_totals_is_copy(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.totals()["a"] = 99.0
        assert sw.totals()["a"] == 1.0


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_serial_accepts_lambda(self):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=None) == [2, 3]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_single_item_runs_serially(self):
        # Even with workers>1 a single item short-circuits (no pool overhead).
        assert parallel_map(lambda x: x, [7], workers=4) == [7]

    def test_empty(self):
        assert parallel_map(_square, [], workers=2) == []

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_chunked_preserves_order(self):
        items = list(range(13))
        assert parallel_map(_square, items, workers=2, chunksize=4) == [
            x * x for x in items
        ]

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=1, chunksize=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=-1)


class TestResolveWorkers:
    def test_serial_requests(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_resolves_to_all_cores_or_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_workers(0) == 8

    def test_zero_falls_back_to_serial_on_single_core(self, monkeypatch):
        # The parallel-by-default setting must be safe on a 1-CPU host.
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert resolve_workers(0) == 1

    def test_explicit_count_honoured_even_on_single_core(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        if process_pool_supported():
            assert resolve_workers(4) == 4

    def test_item_count_caps_and_short_circuits(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_workers(0, n_items=3) == 3
        assert resolve_workers(6, n_items=1) == 1
        assert resolve_workers(6, n_items=0) == 1

    def test_no_pool_support_forces_serial(self, monkeypatch):
        monkeypatch.setattr(
            "repro.utils.parallel.process_pool_supported", lambda: False
        )
        assert resolve_workers(0) == 1
        assert resolve_workers(4) == 1


def _crash_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x * x


class TestErrorSurfacing:
    """A worker crash must name the failing item, not dump a bare pool trace."""

    def test_serial_error_carries_index_and_label(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(
                _crash_on_three,
                [1, 2, 3, 4],
                workers=1,
                label=lambda i, item: f"seed {item}",
            )
        assert err.value.index == 2
        assert "seed 3" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)

    def test_parallel_error_carries_index_and_worker_traceback(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(
                _crash_on_three,
                [0, 1, 2, 3, 4, 5],
                workers=2,
                label=lambda i, item: f"replication {i}, seed {item}",
            )
        assert err.value.index == 3
        assert "replication 3, seed 3" in str(err.value)
        assert "boom at 3" in str(err.value)
        # The worker-side traceback is captured into the message.
        assert "ValueError" in err.value.worker_traceback

    def test_parallel_error_in_chunked_run(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_crash_on_three, list(range(8)), workers=2, chunksize=3)
        assert err.value.index == 3

    def test_error_without_label_still_names_index(self):
        with pytest.raises(ParallelExecutionError, match="item 2"):
            parallel_map(_crash_on_three, [1, 2, 3], workers=2)
