"""Tests for repro.utils.timing and repro.utils.parallel."""

import time

import pytest

from repro.utils.parallel import default_workers, parallel_map
from repro.utils.timing import Stopwatch


class TestStopwatch:
    def test_measure_accumulates(self):
        sw = Stopwatch()
        with sw.measure("phase"):
            time.sleep(0.01)
        with sw.measure("phase"):
            time.sleep(0.01)
        assert sw.totals()["phase"] >= 0.02
        assert sw.counts()["phase"] == 2

    def test_multiple_names(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 2.0)
        assert sw.totals() == {"a": 1.0, "b": 2.0}

    def test_report_sorted_by_total(self):
        sw = Stopwatch()
        sw.add("small", 0.1)
        sw.add("big", 5.0)
        report = sw.report()
        assert report.index("big") < report.index("small")

    def test_totals_is_copy(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.totals()["a"] = 99.0
        assert sw.totals()["a"] == 1.0


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_serial_accepts_lambda(self):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=None) == [2, 3]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_single_item_runs_serially(self):
        # Even with workers>1 a single item short-circuits (no pool overhead).
        assert parallel_map(lambda x: x, [7], workers=4) == [7]

    def test_empty(self):
        assert parallel_map(_square, [], workers=2) == []

    def test_default_workers_positive(self):
        assert default_workers() >= 1
