"""Tests for repro.utils.timing and repro.utils.parallel."""

import time

import pytest

from repro.utils.parallel import (
    ParallelExecutionError,
    default_workers,
    parallel_map,
    process_pool_supported,
    resolve_workers,
)
from repro.utils.timing import Span, Stopwatch, monotonic


class TestMonotonic:
    def test_is_perf_counter(self):
        # The span clock must be monotonic — wall-clock time.time() deltas
        # can go negative under NTP slew.
        assert monotonic is time.perf_counter

    def test_never_decreases(self):
        a = monotonic()
        b = monotonic()
        assert b >= a


class TestSpan:
    def test_reports_duration_to_sink(self):
        seen = {}
        with Span("phase", lambda name, s: seen.setdefault(name, s)):
            time.sleep(0.005)
        assert seen["phase"] >= 0.005

    def test_seconds_available_after_exit(self):
        with Span("x") as s:
            time.sleep(0.002)
        assert s.seconds >= 0.002

    def test_seconds_runs_live_while_open(self):
        s = Span("x")
        assert s.seconds == 0.0  # not started yet
        with s:
            assert s.seconds >= 0.0

    def test_duration_never_negative(self):
        with Span("x") as s:
            pass
        assert s.seconds >= 0.0


class TestStopwatch:
    def test_measure_accumulates(self):
        sw = Stopwatch()
        with sw.measure("phase"):
            time.sleep(0.01)
        with sw.measure("phase"):
            time.sleep(0.01)
        assert sw.totals()["phase"] >= 0.02
        assert sw.counts()["phase"] == 2

    def test_multiple_names(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.add("b", 2.0)
        assert sw.totals() == {"a": 1.0, "b": 2.0}

    def test_report_sorted_by_total(self):
        sw = Stopwatch()
        sw.add("small", 0.1)
        sw.add("big", 5.0)
        report = sw.report()
        assert report.index("big") < report.index("small")

    def test_totals_is_copy(self):
        sw = Stopwatch()
        sw.add("a", 1.0)
        sw.totals()["a"] = 99.0
        assert sw.totals()["a"] == 1.0

    def test_merge_adds_totals_and_counts(self):
        a, b = Stopwatch(), Stopwatch()
        a.add("shared", 1.0)
        b.add("shared", 2.0)
        b.add("only_b", 0.5)
        a.merge(b)
        assert a.totals() == {"shared": 3.0, "only_b": 0.5}
        assert a.counts() == {"shared": 2, "only_b": 1}

    def test_merge_is_associative(self):
        def make(v):
            sw = Stopwatch()
            sw.add("p", v)
            return sw

        left = make(1.0)
        left.merge(make(2.0))
        left.merge(make(4.0))
        inner = make(2.0)
        inner.merge(make(4.0))
        right = make(1.0)
        right.merge(inner)
        assert left.totals() == right.totals()
        assert left.counts() == right.counts()


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_serial_accepts_lambda(self):
        assert parallel_map(lambda x: x + 1, [1, 2], workers=None) == [2, 3]

    def test_parallel_matches_serial(self):
        items = list(range(8))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_single_item_runs_serially(self):
        # Even with workers>1 a single item short-circuits (no pool overhead).
        assert parallel_map(lambda x: x, [7], workers=4) == [7]

    def test_empty(self):
        assert parallel_map(_square, [], workers=2) == []

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_chunked_preserves_order(self):
        items = list(range(13))
        assert parallel_map(_square, items, workers=2, chunksize=4) == [
            x * x for x in items
        ]

    def test_invalid_chunksize(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=1, chunksize=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=-1)


class TestWorkerClamp:
    """The pool must never fork more processes than there are chunks."""

    @pytest.mark.skipif(not process_pool_supported(), reason="no process pools")
    def test_pool_clamped_to_chunk_count(self, monkeypatch):
        import repro.utils.parallel as par

        seen = {}
        real = par.ProcessPoolExecutor

        class Recorder(real):
            def __init__(self, max_workers=None, **kw):
                seen["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kw)

        monkeypatch.setattr(par, "ProcessPoolExecutor", Recorder)
        # 8 items in chunks of 4 → 2 chunks: a 4-worker request must clamp
        # to 2 processes (the surplus two would only be forked to sit idle).
        out = par.parallel_map(_square, list(range(8)), workers=4, chunksize=4)
        assert out == [x * x for x in range(8)]
        assert seen["max_workers"] == 2

    @pytest.mark.skipif(not process_pool_supported(), reason="no process pools")
    def test_no_clamp_when_chunks_exceed_workers(self, monkeypatch):
        import repro.utils.parallel as par

        seen = {}
        real = par.ProcessPoolExecutor

        class Recorder(real):
            def __init__(self, max_workers=None, **kw):
                seen["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kw)

        monkeypatch.setattr(par, "ProcessPoolExecutor", Recorder)
        out = par.parallel_map(_square, list(range(8)), workers=2, chunksize=1)
        assert out == [x * x for x in range(8)]
        assert seen["max_workers"] == 2


class TestResolveWorkers:
    def test_serial_requests(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_resolves_to_all_cores_or_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_workers(0) == 8

    def test_zero_falls_back_to_serial_on_single_core(self, monkeypatch):
        # The parallel-by-default setting must be safe on a 1-CPU host.
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert resolve_workers(0) == 1

    def test_explicit_count_honoured_even_on_single_core(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        if process_pool_supported():
            assert resolve_workers(4) == 4

    def test_item_count_caps_and_short_circuits(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert resolve_workers(0, n_items=3) == 3
        assert resolve_workers(6, n_items=1) == 1
        assert resolve_workers(6, n_items=0) == 1

    def test_no_pool_support_forces_serial(self, monkeypatch):
        monkeypatch.setattr(
            "repro.utils.parallel.process_pool_supported", lambda: False
        )
        assert resolve_workers(0) == 1
        assert resolve_workers(4) == 1


def _crash_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x * x


class TestErrorSurfacing:
    """A worker crash must name the failing item, not dump a bare pool trace."""

    def test_serial_error_carries_index_and_label(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(
                _crash_on_three,
                [1, 2, 3, 4],
                workers=1,
                label=lambda i, item: f"seed {item}",
            )
        assert err.value.index == 2
        assert "seed 3" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)

    def test_parallel_error_carries_index_and_worker_traceback(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(
                _crash_on_three,
                [0, 1, 2, 3, 4, 5],
                workers=2,
                label=lambda i, item: f"replication {i}, seed {item}",
            )
        assert err.value.index == 3
        assert "replication 3, seed 3" in str(err.value)
        assert "boom at 3" in str(err.value)
        # The worker-side traceback is captured into the message.
        assert "ValueError" in err.value.worker_traceback

    def test_parallel_error_in_chunked_run(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_crash_on_three, list(range(8)), workers=2, chunksize=3)
        assert err.value.index == 3

    def test_error_without_label_still_names_index(self):
        with pytest.raises(ParallelExecutionError, match="item 2"):
            parallel_map(_crash_on_three, [1, 2, 3], workers=2)

    def test_serial_error_carries_derived_streams(self):
        from repro.utils.rng import describe_streams

        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(
                _crash_on_three,
                [1, 2, 3],
                workers=1,
                diagnostics=lambda i, item: describe_streams(item, ("LFSC",)),
            )
        expected = describe_streams(3, ("LFSC",))
        assert err.value.streams == expected
        assert f"derived streams: {expected}" in str(err.value)
        assert "env.workload=0x" in str(err.value)
        assert "policy.LFSC=0x" in str(err.value)

    def test_parallel_error_carries_derived_streams(self):
        from repro.utils.rng import describe_streams

        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(
                _crash_on_three,
                [0, 1, 2, 3, 4],
                workers=2,
                diagnostics=lambda i, item: describe_streams(item, ()),
            )
        assert err.value.streams == describe_streams(3, ())

    def test_broken_diagnostics_never_masks_the_error(self):
        def boom_diag(i, item):
            raise RuntimeError("diagnostics are broken")

        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_crash_on_three, [1, 2, 3], workers=1, diagnostics=boom_diag)
        assert err.value.streams == ""
        assert err.value.index == 2


def _bump_metrics(x: int) -> int:
    from repro.obs.metrics import global_registry

    reg = global_registry()
    reg.counter("test.calls").inc()
    reg.counter("test.value").inc(float(x))
    reg.histogram("test.hist", bounds=(1.0, 10.0)).observe(float(x))
    return x


def _trace_then_crash(x: int) -> int:
    from repro.obs.runtime import ObsContext

    ctx = ObsContext()
    ctx.begin_slot(x)
    ctx.end_slot(
        {
            "t": x,
            "policy": "LFSC",
            "assigned": x,
            "per_scn_assigned": [x],
            "reward": 0.0,
            "expected_reward": None,
            "violation_qos": 0.0,
            "violation_resource": 0.0,
            "multipliers_qos": None,
            "multipliers_resource": None,
        }
    )
    if x == 2:
        raise RuntimeError("mid-slot crash")
    return x


class TestWorkerMetricsMerge:
    """Worker-process metrics fold back into the parent registry."""

    def setup_method(self):
        from repro.obs.metrics import reset_global_registry

        reset_global_registry()

    teardown_method = setup_method

    def _snapshot_after(self, workers):
        from repro.obs.metrics import global_registry, reset_global_registry

        reset_global_registry()
        parallel_map(_bump_metrics, [1, 2, 3, 4], workers=workers)
        return global_registry().snapshot()

    def test_parallel_merge_matches_serial(self):
        serial = self._snapshot_after(workers=1)
        parallel = self._snapshot_after(workers=2)
        assert serial["counters"] == parallel["counters"] == {
            "test.calls": 4.0,
            "test.value": 10.0,
        }
        assert serial["histograms"] == parallel["histograms"]

    def test_reused_workers_do_not_double_count(self):
        # Chunked execution reuses pool processes; the delta-based merge
        # must not re-add a worker's pre-chunk totals.
        snap = self._snapshot_after(workers=2)
        assert snap["counters"]["test.calls"] == 4.0


class TestErrorTraceRecord:
    """A crashing worker reports the last slot it traced."""

    def test_parallel_error_carries_trace_record(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_trace_then_crash, [0, 1, 2, 3], workers=2)
        assert err.value.trace_record is not None
        assert err.value.trace_record["t"] == 2
        assert "last traced slot before failure: t=2" in str(err.value)

    def test_serial_error_carries_trace_record(self):
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_trace_then_crash, [0, 1, 2, 3], workers=1)
        assert err.value.trace_record["t"] == 2

    def test_trace_record_none_when_nothing_traced(self):
        from repro.obs import runtime

        runtime._LAST_RECORD = None
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_crash_on_three, [1, 2, 3], workers=1)
        assert err.value.trace_record is None
        assert "last traced slot" not in str(err.value)
