"""Tests for repro.utils.rng — deterministic stream plumbing."""

import numpy as np
import pytest

from repro.utils.rng import (
    FLEET_SPAWN_KEY,
    REPLICATION_SPAWN_KEY,
    RngFactory,
    as_generator,
    fleet_seed,
    fleet_seed_sequence,
    replication_seed,
    replication_seed_sequence,
    replication_seeds,
    spawn_generators,
)


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4

    def test_streams_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible(self):
        a1, b1 = spawn_generators(5, 2)
        a2, b2 = spawn_generators(5, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))
        np.testing.assert_array_equal(b1.random(5), b2.random(5))

    def test_zero_is_empty(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRngFactory:
    def test_same_name_same_stream(self):
        fac = RngFactory(0)
        assert fac.get("env") is fac.get("env")

    def test_different_names_different_streams(self):
        fac = RngFactory(0)
        a = fac.get("a").random(10)
        b = fac.get("b").random(10)
        assert not np.array_equal(a, b)

    def test_order_independent(self):
        fac1 = RngFactory(0)
        fac1.get("x")
        y1 = fac1.get("y").random(5)
        fac2 = RngFactory(0)
        y2 = fac2.get("y").random(5)  # requested first this time
        np.testing.assert_array_equal(y1, y2)

    def test_root_seed_changes_all_streams(self):
        a = RngFactory(0).get("s").random(5)
        b = RngFactory(1).get("s").random(5)
        assert not np.array_equal(a, b)

    def test_stream_names_listed(self):
        fac = RngFactory(0)
        fac.get("one")
        fac.get("two")
        assert set(fac.stream_names()) == {"one", "two"}

    def test_spawn_anonymous(self):
        fac = RngFactory(0)
        gens = fac.spawn(3)
        assert len(gens) == 3

    def test_root_entropy_exposed(self):
        fac = RngFactory(99)
        assert fac.root_entropy == 99

    def test_seed_sequence_root_streams_differ_by_spawn_key(self):
        # Factories rooted at sibling SeedSequences must not share streams.
        a = RngFactory(replication_seed_sequence(0, 0)).get("workload").random(8)
        b = RngFactory(replication_seed_sequence(0, 1)).get("workload").random(8)
        assert not np.array_equal(a, b)


class TestReplicationSeedContract:
    """The frozen seed → stream mapping behind parallel replication.

    The full property suite lives in
    ``tests/experiments/test_stream_isolation.py``; these are the utils-level
    basics.
    """

    def test_deterministic(self):
        assert replication_seed(0, 5) == replication_seed(0, 5)

    def test_distinct_per_index_and_base(self):
        seeds = replication_seeds(0, 16) + replication_seeds(1, 16)
        assert len(set(seeds)) == 32

    def test_matches_seed_sequence_definition(self):
        ss = replication_seed_sequence(3, 2)
        assert tuple(ss.spawn_key) == (REPLICATION_SPAWN_KEY, 2)
        assert replication_seed(3, 2) == int(ss.generate_state(1, np.uint64)[0])

    def test_not_additive(self):
        # Distinguishes the contract from the collision-prone base+k scheme.
        assert replication_seed(0, 1) != replication_seed(1, 0)

    def test_empty_and_invalid(self):
        assert replication_seeds(0, 0) == []
        with pytest.raises(ValueError):
            replication_seeds(0, -2)
        with pytest.raises(ValueError):
            replication_seed(0, -1)


class TestFleetTileNamespace:
    """The frozen seed → tile-stream mapping behind sharded fleets.

    Tile roots must be pure functions of (seed, tile) — never of the shard
    count — and must stay disjoint from the replication namespace so a fleet
    and a replication sweep on the same seed cannot share a stream.
    """

    def test_deterministic(self):
        assert fleet_seed(0, 5) == fleet_seed(0, 5)
        a = RngFactory(fleet_seed_sequence(0, 3)).env("workload").random(8)
        b = RngFactory(fleet_seed_sequence(0, 3)).env("workload").random(8)
        np.testing.assert_array_equal(a, b)

    def test_matches_seed_sequence_definition(self):
        ss = fleet_seed_sequence(3, 2)
        assert tuple(ss.spawn_key) == (FLEET_SPAWN_KEY, 2)
        assert fleet_seed(3, 2) == int(ss.generate_state(1, np.uint64)[0])

    def test_tiles_independent(self):
        seeds = {fleet_seed(0, t) for t in range(64)}
        assert len(seeds) == 64
        a = RngFactory(fleet_seed_sequence(0, 0)).env("workload").random(8)
        b = RngFactory(fleet_seed_sequence(0, 1)).env("workload").random(8)
        assert not np.array_equal(a, b)

    def test_disjoint_from_replication_namespace(self):
        # Same (base, index) across namespaces must not collide: the spawn
        # keys differ, so a fleet tile never replays a replication's streams.
        assert FLEET_SPAWN_KEY != REPLICATION_SPAWN_KEY
        for k in range(16):
            assert fleet_seed(0, k) != replication_seed(0, k)

    def test_not_additive(self):
        assert fleet_seed(0, 1) != fleet_seed(1, 0)

    def test_negative_tile_raises(self):
        with pytest.raises(ValueError):
            fleet_seed(0, -1)
        with pytest.raises(ValueError):
            fleet_seed_sequence(0, -1)
