"""Shared-memory result transport: round-trips, fallbacks, bit-equivalence.

The pickle pipe is the reference: whatever ``parallel_map`` returns with
``transport="pickle"`` must come back byte-for-byte identical through the
shared-memory path, for the real payload (``SimulationResult`` trees) and
for adversarial shapes (object dtypes, zero-size arrays, nested containers,
namedtuples, frozen dataclasses).  Also covers the lifetime contract: a
consumed block is unlinked, and ``discard_block`` tolerates missing blocks.
"""

import collections
import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.utils import shm as shm_transport
from repro.utils.parallel import parallel_map
from repro.utils.shm import (
    ArrayRef,
    discard_block,
    pack_to_shm,
    shm_supported,
    unpack_from_shm,
)

needs_shm = pytest.mark.skipif(not shm_supported(), reason="no shared memory on host")

Point = collections.namedtuple("Point", ["x", "label"])


@dataclasses.dataclass(frozen=True)
class FrozenResult:
    reward: np.ndarray
    name: str


def _assert_tree_equal(a, b):
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
    elif isinstance(a, dict):
        assert a.keys() == b.keys()
        for k in a:
            _assert_tree_equal(a[k], b[k])
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b)
        for x, y in zip(a, b):
            _assert_tree_equal(x, y)
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        for f in dataclasses.fields(a):
            _assert_tree_equal(getattr(a, f.name), getattr(b, f.name))
    else:
        assert a == b


class TestPackUnpack:
    @needs_shm
    def test_round_trip_nested_payload(self):
        rng = np.random.default_rng(0)
        values = [
            {
                "floats": rng.random(17),
                "ints": np.arange(5, dtype=np.int32),
                "nested": [Point(x=rng.random(3), label="p"), (1, 2.5, "s")],
                "frozen": FrozenResult(reward=rng.random(8), name="run-0"),
                "scalar": 3.25,
            },
            rng.random((4, 6)),
        ]
        skeletons, name, manifest = pack_to_shm(values)
        assert name is not None and manifest
        rebuilt = unpack_from_shm(skeletons, name, manifest)
        _assert_tree_equal(values, rebuilt)
        # The block was unlinked after unpacking: attaching again must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    @needs_shm
    def test_skeleton_replaces_arrays_with_refs(self):
        values = [{"a": np.arange(4, dtype=np.float64)}]
        skeletons, name, manifest = pack_to_shm(values)
        assert isinstance(skeletons[0]["a"], ArrayRef)
        assert manifest[0][0] == (4,) and manifest[0][1] == "<f8"
        discard_block(name)

    @needs_shm
    def test_object_and_zero_size_arrays_stay_inline(self):
        obj_arr = np.array([{"k": 1}, None], dtype=object)
        empty = np.empty(0)
        payload = np.arange(3.0)
        skeletons, name, manifest = pack_to_shm([(obj_arr, empty, payload)])
        assert name is not None and len(manifest) == 1  # only `payload` lifted
        rebuilt = unpack_from_shm(skeletons, name, manifest)
        assert rebuilt[0][0] is obj_arr
        assert rebuilt[0][1] is empty
        np.testing.assert_array_equal(rebuilt[0][2], payload)

    def test_nothing_to_lift_falls_back(self):
        values = [1, "two", {"three": 3}]
        skeletons, name, manifest = pack_to_shm(values)
        assert name is None and manifest == []
        assert skeletons is values

    @needs_shm
    def test_non_contiguous_arrays_round_trip(self):
        base = np.arange(20.0).reshape(4, 5)
        view = base[:, ::2]  # non-contiguous: packed via ascontiguousarray
        skeletons, name, manifest = pack_to_shm([view])
        rebuilt = unpack_from_shm(skeletons, name, manifest)
        np.testing.assert_array_equal(rebuilt[0], view)

    def test_discard_block_tolerates_missing(self):
        discard_block("psm_definitely_not_there")

    def test_all_zero_length_arrays_fall_back_inline(self):
        # Nothing liftable → no block is ever created; skeletons are the
        # values themselves and the empties come back as-is.
        empties = [np.empty(0), np.zeros((0, 3)), np.empty(0, dtype=np.int64)]
        skeletons, name, manifest = pack_to_shm(empties)
        # Inline fallback contract: no block, and the skeletons ARE the
        # values (callers skip unpack_from_shm when name is None).
        assert name is None and manifest == []
        assert skeletons is empties

    @needs_shm
    def test_zero_length_alongside_lifted_round_trips(self):
        payload = {"empty": np.zeros((0, 2)), "full": np.arange(6.0)}
        skeletons, name, manifest = pack_to_shm([payload])
        rebuilt = unpack_from_shm(skeletons, name, manifest)
        assert rebuilt[0]["empty"].shape == (0, 2)
        np.testing.assert_array_equal(rebuilt[0]["full"], payload["full"])

    @needs_shm
    def test_transposed_array_round_trips(self):
        base = np.arange(12.0).reshape(3, 4)
        view = base.T  # non-contiguous in C order
        assert not view.flags["C_CONTIGUOUS"]
        skeletons, name, manifest = pack_to_shm([view])
        rebuilt = unpack_from_shm(skeletons, name, manifest)
        assert rebuilt[0].shape == (4, 3)
        np.testing.assert_array_equal(rebuilt[0], view)


def _simulate(seed: int):
    """Worker: a small simulation whose result is a frozen-dataclass tree."""
    from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy

    cfg = ExperimentConfig.tiny(horizon=8, seed=seed)
    sim = build_simulation(cfg)
    return sim.run(make_policy("LFSC", cfg, sim.truth), cfg.horizon)


class TestParallelTransport:
    @needs_shm
    def test_shm_equals_pickle_equals_serial(self):
        items = [0, 1, 2]
        serial = parallel_map(_simulate, items, workers=1)
        shm_res = parallel_map(_simulate, items, workers=2, transport="shm")
        pickled = parallel_map(_simulate, items, workers=2, transport="pickle")
        for a, b, c in zip(serial, shm_res, pickled):
            np.testing.assert_array_equal(a.reward, b.reward)
            np.testing.assert_array_equal(a.reward, c.reward)
            np.testing.assert_array_equal(a.completed, b.completed)
            np.testing.assert_array_equal(a.completed, c.completed)
            np.testing.assert_array_equal(a.violation_qos, b.violation_qos)
            np.testing.assert_array_equal(a.violation_qos, c.violation_qos)

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            parallel_map(_simulate, [0], workers=1, transport="carrier-pigeon")

    @needs_shm
    def test_worker_error_does_not_leak_blocks(self):
        from repro.utils.parallel import ParallelExecutionError

        with pytest.raises(ParallelExecutionError):
            parallel_map(_boom_after_result, [0, 1], workers=2, transport="shm")


def _boom_after_result(i: int):
    if i == 1:
        raise RuntimeError("boom")
    return {"payload": np.arange(64.0)}


_DIE_MID_CHUNK = '''\
import os
import time

import numpy as np

from repro.utils.parallel import parallel_map


def work(i):
    if i == 1:
        time.sleep(0.2)
        os._exit(1)  # hard death: no atexit hooks, no finalizers
    return {"payload": np.arange(256.0)}


if __name__ == "__main__":
    try:
        parallel_map(work, [0, 1], workers=2, chunksize=1, transport="shm")
    except Exception as exc:
        print(f"raised:{type(exc).__name__}")
        raise SystemExit(0)
    print("no-error")
'''


class TestWorkerDeathCleanup:
    """A worker killed mid-chunk must not leak segments or tracker warnings.

    Runs in a subprocess: the resource tracker only reports leaked
    shared-memory objects on interpreter exit, so the warning is observable
    only on a fresh interpreter's stderr.
    """

    @needs_shm
    @pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm")
    def test_hard_death_leaves_no_segments(self, tmp_path):
        script = tmp_path / "die_mid_chunk.py"
        script.write_text(_DIE_MID_CHUNK)
        src = Path(shm_transport.__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        before = set(os.listdir("/dev/shm"))
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "raised:" in proc.stdout, proc.stdout
        # The tracker prints "resource_tracker: There appear to be N leaked
        # shared_memory objects ..." at exit when a segment was registered
        # but never unlinked.
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
        leftover = {
            n for n in set(os.listdir("/dev/shm")) - before if n.startswith("psm_")
        }
        assert not leftover, f"leaked shm segments: {leftover}"
