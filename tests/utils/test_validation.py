"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_interval,
    check_positive,
    check_probability,
    check_shape,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_rejects_zero_strict(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_accepts_zero_nonstrict(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_rejects_negative_nonstrict(self):
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=(False, True))
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=(True, False))

    def test_outside(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_in_range("x", 2.0, 0, 1)


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_valid(self, p):
        assert check_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_invalid(self, p):
        with pytest.raises(ValueError):
            check_probability("p", p)


class TestCheckShape:
    def test_exact_match(self):
        arr = np.zeros((2, 3))
        assert check_shape("a", arr, (2, 3)) is not None

    def test_wildcard(self):
        check_shape("a", np.zeros((5, 3)), (-1, 3))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="dims"):
            check_shape("a", np.zeros(3), (1, 3))

    def test_extent_mismatch(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("a", np.zeros((2, 4)), (2, 3))


class TestCheckInterval:
    def test_valid(self):
        assert check_interval("r", (1.0, 2.0)) == (1.0, 2.0)

    def test_degenerate_ok(self):
        assert check_interval("r", (1.0, 1.0)) == (1.0, 1.0)

    def test_inverted_raises(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            check_interval("r", (2.0, 1.0))
