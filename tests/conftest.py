"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.network import NetworkConfig
from repro.env.simulator import SlotObservation
from repro.env.tasks import TaskBatch
from repro.env.workload import SlotWorkload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_slot(
    contexts: np.ndarray,
    coverage: list[list[int]],
    t: int = 0,
) -> SlotObservation:
    """Build a SlotWorkload from raw contexts and coverage index lists."""
    batch = TaskBatch.from_contexts(np.asarray(contexts, dtype=float))
    cov = [np.asarray(c, dtype=np.int64) for c in coverage]
    return SlotWorkload(t=t, tasks=batch, coverage=cov)


def uniform_contexts(n: int, dims: int, rng: np.random.Generator) -> np.ndarray:
    return rng.random((n, dims))


@pytest.fixture
def tiny_network() -> NetworkConfig:
    return NetworkConfig(num_scns=3, capacity=2, alpha=1.0, beta=3.0)


@pytest.fixture
def simple_slot(rng) -> SlotObservation:
    """3 SCNs, 6 tasks, overlapping coverage."""
    contexts = uniform_contexts(6, 3, rng)
    coverage = [[0, 1, 2, 3], [2, 3, 4, 5], [0, 4, 5]]
    return make_slot(contexts, coverage)
