"""On-disk Oracle solver cache: persistence, equivalence, resilience.

The disk tier (DESIGN.md §9) extends the in-memory ``SlotProblemCache``
with content-addressed ``.npy``/``.npz`` files so Oracle memos survive
process boundaries and sessions.  Soundness inherits from the memory tier —
keys are blake2b signatures of problem content — so these tests focus on
the disk-specific claims: cold vs warm bit-equivalence across processes,
the versioned on-disk format, concurrent-writer safety, and the everything-
is-a-miss behaviour on unreadable state.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.solvers.cache import (
    CACHE_DIR_ENV,
    DiskCacheBackend,
    SlotProblemCache,
    shared_cache,
)

_RUN_SNIPPET = """
import json, sys
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs.metrics import global_registry
cfg = ExperimentConfig(
    horizon=30, num_scns=3, k_min=4, k_max=8, seed=9, cache_dir=sys.argv[1]
)
res = run_experiment(cfg, ["Oracle", "LFSC"], workers=None)
counters = global_registry().snapshot()["counters"]
print(json.dumps({
    "rewards": {k: r.reward.tolist() for k, r in res.items()},
    "disk": {k: v for k, v in counters.items() if "disk" in k},
}))
"""


def _run_subprocess(cache_dir: Path) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _RUN_SNIPPET, str(cache_dir)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


class TestCrossProcess:
    def test_cold_vs_warm_bit_equivalent(self, tmp_path):
        cold = _run_subprocess(tmp_path)
        warm = _run_subprocess(tmp_path)
        assert cold["rewards"] == warm["rewards"]
        assert cold["disk"].get("oracle.cache.disk.store", 0) > 0
        assert warm["disk"].get("oracle.cache.disk.hit", 0) > 0
        assert warm["disk"].get("oracle.cache.disk.store", 0) == 0

    def test_disk_off_matches_disk_on(self, tmp_path):
        on = _run_subprocess(tmp_path)
        cfg = ExperimentConfig(horizon=30, num_scns=3, k_min=4, k_max=8, seed=9)
        off = run_experiment(cfg, ["Oracle", "LFSC"], workers=None)
        assert on["rewards"] == {k: r.reward.tolist() for k, r in off.items()}


class TestFormat:
    def test_marker_file_written(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        assert backend.enabled
        marker = json.loads((tmp_path / "cache-format.json").read_text())
        assert marker["format"] == DiskCacheBackend.FORMAT

    def test_foreign_format_disables_backend(self, tmp_path):
        (tmp_path / "cache-format.json").write_text(
            json.dumps({"format": "someone-elses-cache/v9"})
        )
        backend = DiskCacheBackend(tmp_path)
        assert not backend.enabled

    def test_store_then_load_achievable(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        value = np.array([1.5, 2.5, 3.5])
        backend.store_achievable(b"sig00", value)
        loaded = backend.load_achievable(b"sig00")
        assert np.array_equal(loaded, value)
        assert backend.load_achievable(b"missing") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        backend = DiskCacheBackend(tmp_path)
        backend.store_achievable(b"sigbad", np.arange(3.0))
        path = next((tmp_path / "ach").rglob("*.npy"))
        path.write_bytes(b"not numpy at all")
        assert backend.load_achievable(b"sigbad") is None

    def test_concurrent_store_converges(self, tmp_path):
        a = DiskCacheBackend(tmp_path)
        b = DiskCacheBackend(tmp_path)
        value = np.arange(5.0)
        a.store_achievable(b"sig11", value)
        b.store_achievable(b"sig11", value)  # second writer: exists-check no-op
        assert np.array_equal(a.load_achievable(b"sig11"), value)
        assert len(list((tmp_path / "ach").rglob("*.npy"))) == 1


class TestWiring:
    def test_memory_promotes_disk_hits(self, tmp_path):
        disk = DiskCacheBackend(tmp_path)
        disk.store_achievable(b"sig22", np.arange(4.0))
        cache = SlotProblemCache(disk=disk)
        first = cache.achievable(b"sig22")
        assert first is not None
        # Promotion: a second read must come from memory (delete the file).
        for p in (tmp_path / "ach").rglob("*.npy"):
            p.unlink()
        assert np.array_equal(cache.achievable(b"sig22"), first)

    def test_shared_cache_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        cache = shared_cache()
        assert cache.disk is not None
        assert cache.disk.enabled

    def test_shared_cache_rebinds_on_new_dir(self, tmp_path):
        a = shared_cache(str(tmp_path / "a"))
        assert Path(a.disk.root) == tmp_path / "a"
        b = shared_cache(str(tmp_path / "b"))
        assert a is b
        assert Path(b.disk.root) == tmp_path / "b"
        # No explicit dir: keeps the current binding, never detaches.
        c = shared_cache()
        assert c.disk is b.disk
