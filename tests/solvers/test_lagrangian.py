"""Tests for repro.solvers.lagrangian — dual decomposition."""

import numpy as np
import pytest

from repro.solvers.lagrangian import solve_dual_decomposition
from repro.solvers.lp import SlotProblem, solve_lp_relaxation


def problem(**kw) -> SlotProblem:
    rng = np.random.default_rng(3)
    M, n, deg = 3, 12, 6
    edge_scn, edge_task = [], []
    for m in range(M):
        tasks = rng.choice(n, deg, replace=False)
        edge_scn.extend([m] * deg)
        edge_task.extend(tasks.tolist())
    E = len(edge_scn)
    params = dict(
        edge_scn=np.array(edge_scn),
        edge_task=np.array(edge_task),
        g=rng.random(E),
        v=rng.random(E),
        q=rng.uniform(1.0, 2.0, size=E),
        num_scns=M,
        num_tasks=n,
        capacity=3,
        alpha=1.0,
        beta=4.0,
    )
    params.update(kw)
    return SlotProblem(**params)


class TestDualDecomposition:
    def test_solution_structurally_valid(self):
        p = problem()
        sol = solve_dual_decomposition(p)
        sel = sol.selected_edges()
        assert np.bincount(p.edge_scn[sel], minlength=3).max() <= 3
        tasks = p.edge_task[sel]
        assert np.unique(tasks).size == tasks.size

    def test_objective_matches_x(self):
        p = problem()
        sol = solve_dual_decomposition(p)
        assert sol.objective == pytest.approx(float(p.g @ sol.x))

    def test_matching_optimum_upper_bounds_dual(self):
        # The dual iterates respect (1a)/(1b) only, so the exact max-weight
        # b-matching on g is a valid upper bound for their raw objective.
        from repro.solvers.matching import max_weight_b_matching, total_weight

        p = problem()
        coverage, weights = [], []
        for m in range(p.num_scns):
            rows = np.flatnonzero(p.edge_scn == m)
            coverage.append(p.edge_task[rows])
            weights.append(p.g[rows])
        opt_scn, opt_task = max_weight_b_matching(
            coverage, weights, p.capacity, p.num_tasks
        )
        opt_val = total_weight(opt_scn, opt_task, coverage, weights)
        sol = solve_dual_decomposition(p)
        assert sol.objective <= opt_val + 1e-9

    def test_duals_grow_when_constraints_bind(self):
        p = problem(alpha=3.0, beta=2.0)  # very tight constraints
        sol = solve_dual_decomposition(p, iterations=50)
        assert sol.lambda_qos.max() > 0.0
        assert sol.lambda_resource.max() > 0.0

    def test_duals_stay_zero_when_slack(self):
        p = problem(alpha=0.0, beta=100.0)
        sol = solve_dual_decomposition(p, iterations=20)
        np.testing.assert_allclose(sol.lambda_resource, 0.0)
        np.testing.assert_allclose(sol.lambda_qos, 0.0)

    def test_penalized_value_improves_on_reward_greedy(self):
        """With tight beta, penalizing consumption must not do worse than
        constraint-blind greedy under the same penalized metric."""
        from repro.solvers.lagrangian import _inner_greedy, _penalized_value

        p = problem(beta=3.0)
        blind = _inner_greedy(p, p.g)
        blind_value = _penalized_value(p, blind, penalty=2.0)
        sol = solve_dual_decomposition(p, penalty=2.0, iterations=40)
        assert sol.penalized_objective >= blind_value - 1e-9

    def test_more_iterations_never_worse(self):
        p = problem(alpha=2.0, beta=3.5)
        short = solve_dual_decomposition(p, iterations=2)
        long = solve_dual_decomposition(p, iterations=60)
        assert long.penalized_objective >= short.penalized_objective - 1e-9

    def test_empty_problem(self):
        p = SlotProblem(
            edge_scn=np.empty(0, np.int64),
            edge_task=np.empty(0, np.int64),
            g=np.empty(0),
            v=np.empty(0),
            q=np.empty(0),
            num_scns=2,
            num_tasks=0,
            capacity=1,
            alpha=0.0,
            beta=1.0,
        )
        sol = solve_dual_decomposition(p)
        assert sol.objective == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            solve_dual_decomposition(problem(), iterations=0)


class TestDualOracleMode:
    def test_runs_in_simulation(self):
        from repro.baselines.oracle import OraclePolicy
        from repro.experiments.runner import ExperimentConfig, build_simulation

        cfg = ExperimentConfig.tiny(horizon=20)
        sim = build_simulation(cfg)
        res = sim.run(OraclePolicy(sim.truth, mode="dual"), 20)
        assert res.total_reward > 0

    def test_dual_oracle_close_to_lp_oracle(self):
        from repro.baselines.oracle import OraclePolicy
        from repro.experiments.runner import ExperimentConfig, build_simulation

        cfg = ExperimentConfig.small(horizon=100)
        sim = build_simulation(cfg)
        lp = sim.run(OraclePolicy(sim.truth, mode="lp"), 100)
        dual = sim.run(OraclePolicy(sim.truth, mode="dual"), 100)
        assert dual.expected_reward.sum() >= 0.7 * lp.expected_reward.sum()
