"""Tests for repro.solvers.ilp — exact integral solutions."""

import numpy as np
import pytest

from repro.solvers.ilp import solve_ilp, solve_two_stage_ilp
from repro.solvers.lp import SlotProblem, solve_lp_relaxation


def problem(**kw) -> SlotProblem:
    params = dict(
        edge_scn=np.array([0, 0, 0, 1, 1, 1]),
        edge_task=np.array([0, 1, 2, 1, 2, 3]),
        g=np.array([0.9, 0.6, 0.3, 0.8, 0.7, 0.1]),
        v=np.array([0.9, 0.5, 0.9, 0.4, 0.9, 0.8]),
        q=np.array([1.1, 1.4, 1.9, 1.2, 1.3, 1.6]),
        num_scns=2,
        num_tasks=4,
        capacity=2,
        alpha=0.8,
        beta=3.0,
    )
    params.update(kw)
    return SlotProblem(**params)


class TestSolveILP:
    def test_solution_is_integral(self):
        sol = solve_ilp(problem())
        assert set(np.unique(sol.x)) <= {0.0, 1.0}

    def test_respects_capacity_and_uniqueness(self):
        p = problem()
        sol = solve_ilp(p)
        sel = sol.selected_edges()
        scn_counts = np.bincount(p.edge_scn[sel], minlength=2)
        assert scn_counts.max() <= 2
        tasks = p.edge_task[sel]
        assert np.unique(tasks).size == tasks.size

    def test_respects_beta(self):
        p = problem(beta=1.2)
        sol = solve_ilp(p, enforce_qos=False)
        sel = sol.selected_edges()
        for m in range(2):
            assert p.q[sel][p.edge_scn[sel] == m].sum() <= 1.2 + 1e-9

    def test_qos_enforced(self):
        p = problem(alpha=0.8)
        sol = solve_ilp(p)
        assert sol.feasible
        sel = sol.selected_edges()
        completed = np.bincount(p.edge_scn[sel], weights=p.v[sel], minlength=2)
        assert (completed >= 0.8 - 1e-9).all()

    def test_infeasible_alpha_reported(self):
        sol = solve_ilp(problem(alpha=2.0))
        assert not sol.feasible

    def test_lp_upper_bounds_ilp(self):
        p = problem(alpha=0.0)
        lp = solve_lp_relaxation(p, qos_mode="ignore")
        ilp = solve_ilp(p, enforce_qos=False)
        assert lp.objective >= ilp.objective - 1e-9

    def test_empty(self):
        p = SlotProblem(
            edge_scn=np.empty(0, np.int64),
            edge_task=np.empty(0, np.int64),
            g=np.empty(0),
            v=np.empty(0),
            q=np.empty(0),
            num_scns=1,
            num_tasks=0,
            capacity=1,
            alpha=0.0,
            beta=1.0,
        )
        assert solve_ilp(p).feasible


class TestTwoStageILP:
    def test_matches_single_stage_when_feasible(self):
        p = problem(alpha=0.8)
        one = solve_ilp(p)
        two = solve_two_stage_ilp(p)
        assert two.feasible
        assert two.objective >= one.objective - 1e-6

    def test_feasible_when_alpha_unachievable(self):
        p = problem(alpha=2.0)
        sol = solve_two_stage_ilp(p)
        assert sol.feasible  # minimum-violation solution always exists

    def test_two_stage_prefers_completion_then_reward(self):
        p = problem(alpha=2.0)
        sol = solve_two_stage_ilp(p)
        sel = sol.selected_edges()
        achieved = p.v[sel].sum()
        # Compare against stage-1's optimum: re-solving must not beat it.
        from repro.solvers.ilp import _milp

        stage1 = _milp(p, p.v, qos_levels=None)
        assert achieved == pytest.approx(float(p.v @ stage1.x), abs=1e-6)
