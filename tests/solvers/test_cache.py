"""Tests for the content-addressed Oracle solver cache."""

import numpy as np
import pytest

from repro.solvers.cache import (
    SlotProblemCache,
    problem_signature,
    reset_shared_cache,
    shared_cache,
)
from tests.solvers.test_highs_direct import random_problem


class TestSignature:
    def test_stable_across_calls(self, rng):
        p = random_problem(rng)
        assert problem_signature(p) == problem_signature(p)

    def test_distinct_content_distinct_signature(self, rng):
        p = random_problem(rng)
        bumped = random_problem(rng)
        assert problem_signature(p) != problem_signature(bumped)

    def test_alpha_excluded(self):
        """The base signature must be shared across an α sweep."""
        p2 = random_problem(np.random.default_rng(99), alpha=1.0)
        p3 = random_problem(np.random.default_rng(99), alpha=7.0)
        assert problem_signature(p2) == problem_signature(p3)

    def test_beta_included(self, rng):
        p2 = random_problem(np.random.default_rng(5), beta=4.5)
        p3 = random_problem(np.random.default_rng(5), beta=9.0)
        assert problem_signature(p2) != problem_signature(p3)

    def test_value_perturbation_changes_signature(self, rng):
        import dataclasses

        p = random_problem(rng)
        g2 = p.g.copy()
        g2[0] = np.nextafter(g2[0], 1.0)
        bumped = dataclasses.replace(p, g=g2)
        assert problem_signature(p) != problem_signature(bumped)


class TestMemos:
    def test_achievable_roundtrip(self, rng):
        cache = SlotProblemCache()
        sig = problem_signature(random_problem(rng))
        assert cache.achievable(sig) is None
        vec = np.arange(5, dtype=float)
        cache.store_achievable(sig, vec)
        np.testing.assert_array_equal(cache.achievable(sig), vec)

    def test_assignment_keyed_by_alpha_and_mode(self, rng):
        cache = SlotProblemCache()
        sig = problem_signature(random_problem(rng))
        cache.store_assignment(sig, 1.5, "lp", "payload")
        assert cache.assignment(sig, 1.5, "lp") == "payload"
        assert cache.assignment(sig, 2.0, "lp") is None
        assert cache.assignment(sig, 1.5, "greedy") is None

    def test_lru_bound_holds(self):
        cache = SlotProblemCache(achievable_entries=4)
        for k in range(10):
            cache.store_achievable(bytes([k]), np.zeros(1))
        assert cache.stats()["achievable"]["size"] == 4
        # Oldest entries are the evicted ones.
        assert cache.achievable(bytes([0])) is None
        assert cache.achievable(bytes([9])) is not None

    def test_stats_count_hits_and_misses(self, rng):
        cache = SlotProblemCache()
        sig = problem_signature(random_problem(rng))
        cache.achievable(sig)
        cache.store_achievable(sig, np.zeros(1))
        cache.achievable(sig)
        stats = cache.stats()["achievable"]
        assert stats == {"hits": 1, "misses": 1, "size": 1}

    def test_clear_empties_every_memo(self, rng):
        cache = SlotProblemCache()
        sig = problem_signature(random_problem(rng))
        cache.store_achievable(sig, np.zeros(1))
        cache.store_stage1_completion(sig, 3.0)
        cache.store_assignment(sig, 1.0, "lp", "x")
        cache.clear()
        assert all(entry["size"] == 0 for entry in cache.stats().values())

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SlotProblemCache(achievable_entries=0)


class TestSharedCache:
    def test_singleton_until_reset(self):
        reset_shared_cache()
        a = shared_cache()
        assert shared_cache() is a
        reset_shared_cache()
        assert shared_cache() is not a
