"""Direct-HiGHS soft-QoS solves must be bit-identical to the linprog path."""

import numpy as np
import pytest
from scipy.sparse import csc_matrix, vstack

from repro.solvers.highs import (
    HAVE_DIRECT_HIGHS,
    SoftQosModel,
    solve_soft_qos,
)
from repro.solvers.lp import SlotProblem, max_achievable_qos, solve_lp_relaxation


def random_problem(rng: np.random.Generator, num_scns=5, num_tasks=12, **kw) -> SlotProblem:
    """A random per-SCN coverage problem with the simulator's edge ordering
    (edge_scn non-decreasing, tasks sorted within each SCN segment)."""
    scn_parts, task_parts = [], []
    for m in range(num_scns):
        k = int(rng.integers(2, num_tasks))
        cov = np.sort(rng.choice(num_tasks, size=k, replace=False))
        scn_parts.append(np.full(k, m, dtype=np.int64))
        task_parts.append(cov.astype(np.int64))
    edge_scn = np.concatenate(scn_parts)
    edge_task = np.concatenate(task_parts)
    E = edge_scn.size
    params = dict(
        edge_scn=edge_scn,
        edge_task=edge_task,
        g=rng.random(E),
        v=rng.random(E),
        q=1.0 + rng.random(E),
        num_scns=num_scns,
        num_tasks=num_tasks,
        capacity=3,
        alpha=1.5,
        beta=4.5,
    )
    params.update(kw)
    return SlotProblem(**params)


class TestBitIdentity:
    def test_matches_linprog_exactly(self, rng):
        for trial in range(20):
            p = random_problem(rng, alpha=float(rng.uniform(0.5, 3.0)))
            cold = solve_lp_relaxation(p, qos_mode="soft")
            fast, achievable = solve_soft_qos(p)
            assert fast.feasible == cold.feasible
            assert fast.status == cold.status
            np.testing.assert_array_equal(fast.x, cold.x)
            np.testing.assert_array_equal(fast.qos_levels, cold.qos_levels)
            assert fast.objective == cold.objective

    def test_injected_achievable_is_bit_identical(self, rng):
        for trial in range(10):
            p = random_problem(rng)
            full, achievable = solve_soft_qos(p)
            injected, ach2 = solve_soft_qos(p, achievable=achievable)
            np.testing.assert_array_equal(injected.x, full.x)
            np.testing.assert_array_equal(ach2, achievable)
            assert injected.objective == full.objective

    def test_achievable_matches_prepass(self, rng):
        p = random_problem(rng)
        _, achievable = solve_soft_qos(p)
        np.testing.assert_array_equal(achievable, max_achievable_qos(p))

    def test_empty_problem(self):
        p = SlotProblem(
            edge_scn=np.empty(0, np.int64),
            edge_task=np.empty(0, np.int64),
            g=np.empty(0),
            v=np.empty(0),
            q=np.empty(0),
            num_scns=3,
            num_tasks=0,
            capacity=2,
            alpha=1.0,
            beta=3.0,
        )
        sol, achievable = solve_soft_qos(p)
        assert sol.feasible and sol.x.size == 0
        np.testing.assert_array_equal(achievable, np.zeros(3))


@pytest.mark.skipif(not HAVE_DIRECT_HIGHS, reason="vendored highspy unavailable")
class TestModelAssembly:
    def test_csc_byte_identical_to_scipy_stack(self, rng):
        for trial in range(5):
            p = random_problem(rng)
            model = SoftQosModel(p)
            A_cap, A_uni, A_qos, A_res = p.constraint_matrices()
            ref = csc_matrix(vstack([A_cap, A_uni, A_res, -A_qos]))
            ref.sort_indices()
            np.testing.assert_array_equal(model.indptr, ref.indptr)
            np.testing.assert_array_equal(model.indices, ref.indices)
            np.testing.assert_array_equal(model.data, ref.data)

    def test_row_bounds_layout(self, rng):
        p = random_problem(rng)
        model = SoftQosModel(p)
        M, n = p.num_scns, p.num_tasks
        assert model.qos_row0 == 2 * M + n
        assert model.num_rows == 3 * M + n
        np.testing.assert_array_equal(model.row_upper[:M], np.full(M, float(p.capacity)))
        np.testing.assert_array_equal(model.row_upper[M : M + n], np.ones(n))
        np.testing.assert_array_equal(
            model.row_upper[M + n : model.qos_row0], np.full(M, p.beta)
        )
        assert np.all(np.isneginf(model.row_lower))
