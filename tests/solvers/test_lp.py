"""Tests for repro.solvers.lp — the per-slot LP relaxation."""

import numpy as np
import pytest

from repro.solvers.lp import SlotProblem, solve_lp_relaxation


def small_problem(**kw) -> SlotProblem:
    """2 SCNs, 4 tasks, full coverage of 2 tasks each."""
    params = dict(
        edge_scn=np.array([0, 0, 1, 1]),
        edge_task=np.array([0, 1, 2, 3]),
        g=np.array([1.0, 0.5, 0.8, 0.2]),
        v=np.array([0.9, 0.8, 0.7, 0.6]),
        q=np.array([1.0, 1.5, 1.2, 1.8]),
        num_scns=2,
        num_tasks=4,
        capacity=2,
        alpha=0.5,
        beta=3.0,
    )
    params.update(kw)
    return SlotProblem(**params)


class TestSlotProblem:
    def test_constraint_matrices_shapes(self):
        p = small_problem()
        A_cap, A_uni, A_qos, A_res = p.constraint_matrices()
        assert A_cap.shape == (2, 4)
        assert A_uni.shape == (4, 4)
        assert A_qos.shape == (2, 4)
        assert A_res.shape == (2, 4)

    def test_capacity_rows_count_edges(self):
        p = small_problem()
        A_cap = p.constraint_matrices()[0].toarray()
        np.testing.assert_array_equal(A_cap[0], [1, 1, 0, 0])
        np.testing.assert_array_equal(A_cap[1], [0, 0, 1, 1])

    def test_qos_rows_weighted_by_v(self):
        p = small_problem()
        A_qos = p.constraint_matrices()[2].toarray()
        np.testing.assert_allclose(A_qos[0], [0.9, 0.8, 0, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            small_problem(g=np.array([1.0]))

    def test_edge_range_validation(self):
        with pytest.raises(ValueError):
            small_problem(edge_task=np.array([0, 1, 2, 9]))


class TestSolveLP:
    def test_optimal_unconstrained_picks_best(self):
        # With alpha=0 and big beta the LP takes everything (reward >= 0).
        p = small_problem(alpha=0.0, beta=100.0)
        sol = solve_lp_relaxation(p, qos_mode="ignore")
        assert sol.feasible
        assert sol.objective == pytest.approx(p.g.sum(), abs=1e-6)

    def test_capacity_binds(self):
        p = small_problem(capacity=1, alpha=0.0, beta=100.0)
        sol = solve_lp_relaxation(p, qos_mode="ignore")
        # Each SCN picks its single best task: 1.0 + 0.8.
        assert sol.objective == pytest.approx(1.8, abs=1e-6)

    def test_uniqueness_binds(self):
        # One task covered by both SCNs; total assignment of it <= 1.
        p = SlotProblem(
            edge_scn=np.array([0, 1]),
            edge_task=np.array([0, 0]),
            g=np.array([1.0, 0.9]),
            v=np.ones(2),
            q=np.ones(2),
            num_scns=2,
            num_tasks=1,
            capacity=1,
            alpha=0.0,
            beta=10.0,
        )
        sol = solve_lp_relaxation(p, qos_mode="ignore")
        assert sol.objective == pytest.approx(1.0, abs=1e-6)

    def test_resource_constraint_binds(self):
        p = small_problem(alpha=0.0, beta=1.0)
        sol = solve_lp_relaxation(p, qos_mode="ignore")
        # SCN 0: q = (1.0, 1.5); best is task 0 alone (q=1 <= beta).
        x = sol.x
        cons0 = p.q[:2] @ x[:2]
        assert cons0 <= 1.0 + 1e-9

    def test_soft_qos_feasible_when_alpha_too_high(self):
        p = small_problem(alpha=2.0)  # impossible: max E[completed] < 2 per SCN
        sol = solve_lp_relaxation(p, qos_mode="soft")
        assert sol.feasible
        assert (sol.qos_levels <= 2.0).all()

    def test_hard_qos_infeasible_reported(self):
        p = small_problem(alpha=2.0)
        sol = solve_lp_relaxation(p, qos_mode="hard")
        assert not sol.feasible

    def test_hard_qos_feasible_when_achievable(self):
        p = small_problem(alpha=0.5)
        sol = solve_lp_relaxation(p, qos_mode="hard")
        assert sol.feasible
        completed = np.bincount(p.edge_scn, weights=p.v * sol.x, minlength=2)
        assert (completed >= 0.5 - 1e-9).all()

    def test_qos_lowers_objective(self):
        free = solve_lp_relaxation(small_problem(), qos_mode="ignore").objective
        tight = solve_lp_relaxation(
            small_problem(alpha=1.4), qos_mode="soft"
        ).objective
        assert tight <= free + 1e-9

    def test_empty_problem(self):
        p = SlotProblem(
            edge_scn=np.empty(0, np.int64),
            edge_task=np.empty(0, np.int64),
            g=np.empty(0),
            v=np.empty(0),
            q=np.empty(0),
            num_scns=2,
            num_tasks=0,
            capacity=1,
            alpha=1.0,
            beta=1.0,
        )
        sol = solve_lp_relaxation(p)
        assert sol.feasible and sol.objective == 0.0

    def test_solution_within_bounds(self):
        sol = solve_lp_relaxation(small_problem())
        assert sol.x.min() >= 0.0 and sol.x.max() <= 1.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            solve_lp_relaxation(small_problem(), qos_mode="nope")
