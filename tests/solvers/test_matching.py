"""Tests for repro.solvers.matching — exact b-matching reference."""

import numpy as np
import pytest

from repro.solvers.matching import max_weight_b_matching, total_weight


class TestMaxWeightBMatching:
    def test_simple_optimum(self):
        cov = [np.array([0, 1]), np.array([0, 1])]
        w = [np.array([0.9, 0.1]), np.array([0.8, 0.7])]
        scn, task = max_weight_b_matching(cov, w, capacity=1, num_tasks=2)
        # Optimal: SCN0 takes task 0 (0.9), SCN1 takes task 1 (0.7).
        assert total_weight(scn, task, cov, w) == pytest.approx(1.6)

    def test_capacity_respected(self, rng):
        cov = [np.arange(6)]
        w = [rng.random(6)]
        scn, task = max_weight_b_matching(cov, w, capacity=2, num_tasks=6)
        assert len(scn) <= 2

    def test_takes_top_weights_single_scn(self):
        cov = [np.arange(4)]
        w = [np.array([0.1, 0.9, 0.5, 0.7])]
        scn, task = max_weight_b_matching(cov, w, capacity=2, num_tasks=4)
        assert set(task.tolist()) == {1, 3}

    def test_no_duplicate_tasks(self, rng):
        cov = [np.arange(5), np.arange(5)]
        w = [rng.random(5), rng.random(5)]
        _, task = max_weight_b_matching(cov, w, capacity=3, num_tasks=5)
        assert np.unique(task).size == task.size

    def test_zero_weight_edges_dropped(self):
        cov = [np.array([0, 1])]
        w = [np.array([0.0, 0.5])]
        scn, task = max_weight_b_matching(cov, w, capacity=2, num_tasks=2)
        assert task.tolist() == [1]

    def test_empty_graph(self):
        scn, task = max_weight_b_matching([], [], capacity=1, num_tasks=0)
        assert scn.size == 0


class TestTotalWeight:
    def test_lookup(self):
        cov = [np.array([2, 5])]
        w = [np.array([0.3, 0.4])]
        assert total_weight(np.array([0]), np.array([5]), cov, w) == pytest.approx(0.4)

    def test_missing_edge_raises(self):
        cov = [np.array([2])]
        w = [np.array([0.3])]
        with pytest.raises(ValueError, match="not a coverage edge"):
            total_weight(np.array([0]), np.array([9]), cov, w)
