"""Tests for the baseline policies (Oracle, vUCB, FML, Random, extras)."""

import numpy as np
import pytest

from repro.baselines.extras import EpsilonGreedyPolicy, ThompsonSamplingPolicy
from repro.baselines.fml import FMLPolicy
from repro.baselines.oracle import OraclePolicy, UnconstrainedOraclePolicy, build_slot_problem
from repro.baselines.random_policy import RandomPolicy
from repro.baselines.vucb import VUCBPolicy
from repro.core.hypercube import ContextPartition
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.network import NetworkConfig
from repro.env.processes import PiecewiseConstantTruth
from repro.env.simulator import Simulation
from repro.env.workload import SyntheticWorkload


def tiny_setup(seed=0):
    network = NetworkConfig(num_scns=3, capacity=3, alpha=1.5, beta=4.5)
    truth = PiecewiseConstantTruth(num_scns=3, dims=3, cells_per_dim=2, seed=4)
    sim = Simulation(
        network=network,
        workload=SyntheticWorkload(
            features=TaskFeatureModel(),
            coverage_model=CoverageSampler(num_scns=3, k_min=6, k_max=12),
        ),
        truth=truth,
        seed=seed,
    )
    return sim, truth


PARTITION = ContextPartition(dims=3, parts=2)


def all_policies(truth):
    return [
        OraclePolicy(truth, mode="lp"),
        OraclePolicy(truth, mode="greedy"),
        UnconstrainedOraclePolicy(truth),
        VUCBPolicy(PARTITION),
        FMLPolicy(PARTITION),
        RandomPolicy(),
        EpsilonGreedyPolicy(PARTITION),
        ThompsonSamplingPolicy(PARTITION),
    ]


class TestAllPoliciesRun:
    @pytest.mark.parametrize("idx", range(8))
    def test_policy_produces_valid_runs(self, idx):
        sim, truth = tiny_setup()
        policy = all_policies(truth)[idx]
        res = sim.run(policy, 40)
        assert res.total_reward >= 0.0
        assert res.accepted.max() <= 3

    @pytest.mark.parametrize("idx", range(8))
    def test_policy_deterministic_given_seed(self, idx):
        sim1, truth1 = tiny_setup(seed=9)
        sim2, truth2 = tiny_setup(seed=9)
        r1 = sim1.run(all_policies(truth1)[idx], 25)
        r2 = sim2.run(all_policies(truth2)[idx], 25)
        np.testing.assert_array_equal(r1.reward, r2.reward)


class TestOracle:
    def test_build_slot_problem_edges_match_coverage(self, rng):
        sim, truth = tiny_setup()
        slot = sim.workload.slot(0, rng)
        p = build_slot_problem(slot, truth, 3, 1.5, 4.5)
        assert p.num_edges == sum(len(c) for c in slot.coverage)
        # Every edge's g matches the truth's expected compound reward.
        exp_g = truth.expected_compound(0, slot.tasks.contexts)
        np.testing.assert_allclose(p.g, exp_g[p.edge_scn, p.edge_task])

    def test_ilp_mode_on_tiny_instance(self):
        network = NetworkConfig(num_scns=2, capacity=2, alpha=1.0, beta=3.0)
        sim = Simulation(
            network=network,
            workload=SyntheticWorkload(
                coverage_model=CoverageSampler(num_scns=2, k_min=3, k_max=5)
            ),
            truth=PiecewiseConstantTruth(num_scns=2, dims=3, cells_per_dim=2, seed=1),
            seed=0,
        )
        res = sim.run(OraclePolicy(sim.truth, mode="ilp"), 10)
        assert res.total_reward > 0

    def test_oracle_beats_random_on_reward(self):
        sim, truth = tiny_setup()
        oracle = sim.run(OraclePolicy(truth), 150)
        rand = sim.run(RandomPolicy(), 150)
        assert oracle.total_reward > rand.total_reward

    def test_oracle_low_violations_vs_random(self):
        sim, truth = tiny_setup()
        oracle = sim.run(OraclePolicy(truth), 150)
        rand = sim.run(RandomPolicy(), 150)
        assert oracle.total_violations < rand.total_violations

    def test_unconstrained_oracle_reward_at_least_constrained(self):
        sim, truth = tiny_setup()
        constrained = sim.run(OraclePolicy(truth), 150)
        unconstrained = sim.run(UnconstrainedOraclePolicy(truth), 150)
        assert (
            unconstrained.expected_reward.sum()
            >= constrained.expected_reward.sum() - 1e-6
        )

    def test_greedy_oracle_close_to_lp_oracle(self):
        sim, truth = tiny_setup()
        lp = sim.run(OraclePolicy(truth, mode="lp"), 100)
        greedy = sim.run(OraclePolicy(truth, mode="greedy"), 100)
        assert greedy.expected_reward.sum() >= 0.75 * lp.expected_reward.sum()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            OraclePolicy(PiecewiseConstantTruth(num_scns=1, seed=0), mode="magic")


class TestVUCB:
    def test_learns_better_than_random(self):
        sim, truth = tiny_setup()
        vucb = sim.run(VUCBPolicy(PARTITION), 300)
        rand = sim.run(RandomPolicy(), 300)
        third = 100
        assert vucb.reward[-third:].mean() > rand.reward[-third:].mean()

    def test_explores_every_cube_with_coverage(self):
        sim, truth = tiny_setup()
        policy = VUCBPolicy(PARTITION)
        sim.run(policy, 200)
        # All cubes that ever appeared should have been tried at least once
        # per SCN (UCB's infinite index forces it).
        assert (policy.stats.counts > 0).mean() > 0.9


class TestFML:
    def test_control_level_grows(self):
        policy = FMLPolicy(PARTITION)
        policy.reset(NetworkConfig(num_scns=1, capacity=1, alpha=0.0, beta=1.0), 10, np.random.default_rng(0))
        policy.t = 10
        early = policy.control_level()
        policy.t = 1000
        late = policy.control_level()
        assert late > early

    def test_z_default_from_dims(self):
        policy = FMLPolicy(ContextPartition(dims=3, parts=2))
        assert policy.z == pytest.approx(2.0 / 6.0)

    def test_invalid_z_rejected(self):
        with pytest.raises(ValueError):
            FMLPolicy(PARTITION, z=1.5)

    def test_learns_better_than_random(self):
        sim, truth = tiny_setup()
        fml = sim.run(FMLPolicy(PARTITION), 300)
        rand = sim.run(RandomPolicy(), 300)
        assert fml.reward[-100:].mean() > rand.reward[-100:].mean()


class TestExtras:
    def test_epsilon_decays(self):
        policy = EpsilonGreedyPolicy(PARTITION, epsilon0=1.0)
        policy.reset(NetworkConfig(num_scns=1, capacity=1, alpha=0.0, beta=1.0), 10, np.random.default_rng(0))
        policy.t = 1
        early = policy.epsilon()
        policy.t = 10000
        assert policy.epsilon() < early

    def test_thompson_scale_validated(self):
        with pytest.raises(ValueError):
            ThompsonSamplingPolicy(PARTITION, scale=0.0)

    def test_extras_learn_better_than_random(self):
        sim, truth = tiny_setup()
        rand = sim.run(RandomPolicy(), 300)
        for policy in (EpsilonGreedyPolicy(PARTITION), ThompsonSamplingPolicy(PARTITION)):
            res = sim.run(policy, 300)
            assert res.reward[-100:].mean() > rand.reward[-100:].mean()
