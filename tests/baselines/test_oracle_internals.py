"""Unit tests for the Oracle's internal machinery on hand-built problems."""

import numpy as np
import pytest

from repro.baselines.oracle import OraclePolicy, _greedy_round
from repro.solvers.lp import SlotProblem


def two_scn_problem(**kw) -> SlotProblem:
    params = dict(
        edge_scn=np.array([0, 0, 0, 1, 1]),
        edge_task=np.array([0, 1, 2, 3, 4]),
        g=np.array([0.9, 0.6, 0.3, 0.8, 0.2]),
        v=np.array([0.9, 0.8, 0.7, 0.6, 0.5]),
        q=np.array([1.0, 1.5, 2.0, 1.2, 1.8]),
        num_scns=2,
        num_tasks=5,
        capacity=2,
        alpha=0.0,
        beta=10.0,
    )
    params.update(kw)
    return SlotProblem(**params)


class TestGreedyRound:
    def test_takes_fractional_support(self):
        p = two_scn_problem()
        x = np.array([1.0, 0.5, 0.0, 1.0, 0.0])
        assignment = _greedy_round(p, x)
        pairs = set(zip(assignment.scn.tolist(), assignment.task.tolist()))
        assert (0, 0) in pairs and (1, 3) in pairs
        assert (0, 2) not in pairs  # x == 0 edges never enter

    def test_respects_capacity(self):
        p = two_scn_problem(capacity=1)
        x = np.ones(5)
        assignment = _greedy_round(p, x)
        assert np.bincount(assignment.scn, minlength=2).max() <= 1

    def test_beta_pruning_drops_worst_density(self):
        # SCN 0 with all three tasks exceeds beta=2.5 (q: 1.0+1.5+2.0);
        # pruning removes lowest g/q first: task 2 (0.3/2.0), then task 1.
        p = two_scn_problem(beta=2.5)
        x = np.array([1.0, 1.0, 1.0, 0.0, 0.0])
        assignment = _greedy_round(p, x)
        tasks0 = set(assignment.tasks_of(0).tolist())
        assert 0 in tasks0
        assert 2 not in tasks0
        # Remaining expected consumption within beta.
        kept_q = sum(q for t, q in zip([0, 1, 2], [1.0, 1.5, 2.0]) if t in tasks0)
        assert kept_q <= 2.5 + 1e-9

    def test_empty_solution(self):
        p = two_scn_problem()
        assignment = _greedy_round(p, np.zeros(5))
        assert len(assignment) == 0


class TestTwoPassGreedy:
    def test_reliability_pass_prioritizes_v(self):
        # alpha binding: the first pass must pick the reliable task even
        # though it has a lower reward than the flashy unreliable one.
        p = SlotProblem(
            edge_scn=np.array([0, 0]),
            edge_task=np.array([0, 1]),
            g=np.array([0.9, 0.1]),
            v=np.array([0.1, 0.9]),
            q=np.array([1.0, 1.0]),
            num_scns=1,
            num_tasks=2,
            capacity=1,
            alpha=0.5,
            beta=10.0,
        )
        assignment = OraclePolicy._two_pass_greedy(p)
        assert assignment.task.tolist() == [1]

    def test_reward_pass_fills_capacity(self):
        p = two_scn_problem(alpha=0.0)
        assignment = OraclePolicy._two_pass_greedy(p)
        assert np.bincount(assignment.scn, minlength=2)[0] == 2

    def test_beta_respected_in_both_passes(self):
        p = two_scn_problem(alpha=1.5, beta=1.0)
        assignment = OraclePolicy._two_pass_greedy(p)
        for m in (0, 1):
            tasks = assignment.tasks_of(m)
            rows = [
                e
                for e in range(p.num_edges)
                if p.edge_scn[e] == m and p.edge_task[e] in tasks
            ]
            assert p.q[rows].sum() <= 1.0 + 1e-9

    def test_empty_problem(self):
        p = SlotProblem(
            edge_scn=np.empty(0, np.int64),
            edge_task=np.empty(0, np.int64),
            g=np.empty(0),
            v=np.empty(0),
            q=np.empty(0),
            num_scns=1,
            num_tasks=0,
            capacity=1,
            alpha=0.0,
            beta=1.0,
        )
        assert len(OraclePolicy._two_pass_greedy(p)) == 0
