"""Warm-vs-cold bit-equivalence and golden regressions for the cached Oracle."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.oracle import (
    OraclePolicy,
    _greedy_round,
    _greedy_round_fast,
    build_slot_problem,
    build_slot_problem_fast,
)
from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.solvers.cache import SlotProblemCache, reset_shared_cache
from tests.solvers.test_highs_direct import random_problem

GOLDEN = Path(__file__).parent / "golden" / "oracle_modes.json"


def _oracle_run(cfg: ExperimentConfig, horizon: int, *, window: int | None = None):
    sim = build_simulation(cfg)
    policy = make_policy("Oracle", cfg, sim.truth)
    return sim.run(policy, horizon, window=window)


def _same(a, b) -> bool:
    return bool(np.array_equal(a.reward, b.reward) and np.array_equal(a.accepted, b.accepted))


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("mode", ["lp", "greedy", "dual"])
    @pytest.mark.parametrize("window", [1, 32])
    def test_small_scale(self, mode, window):
        cfg = ExperimentConfig.small(horizon=60, oracle_mode=mode)
        cold = _oracle_run(cfg.with_overrides(oracle_cache=False), 60)
        reset_shared_cache()
        warm = _oracle_run(cfg.with_overrides(oracle_cache=True), 60, window=window)
        assert _same(cold, warm), f"mode={mode} window={window}"
        reset_shared_cache()

    def test_ilp_tiny(self):
        cfg = ExperimentConfig.tiny(horizon=15, oracle_mode="ilp")
        cold = _oracle_run(cfg.with_overrides(oracle_cache=False), 15)
        reset_shared_cache()
        warm = _oracle_run(cfg.with_overrides(oracle_cache=True), 15, window=8)
        assert _same(cold, warm)
        reset_shared_cache()

    def test_repeat_run_replays_from_cache(self):
        cfg = ExperimentConfig.small(horizon=40, oracle_cache=True)
        reset_shared_cache()
        first = _oracle_run(cfg, 40)
        from repro.solvers.cache import shared_cache

        before = shared_cache().stats()["assignment"]["hits"]
        again = _oracle_run(cfg, 40)
        after = shared_cache().stats()["assignment"]["hits"]
        assert _same(first, again)
        assert after - before == 40  # every slot replayed
        reset_shared_cache()

    def test_pinned_cache_not_replaced_by_simulation(self):
        own = SlotProblemCache()
        cfg = ExperimentConfig.small(horizon=5)
        sim = build_simulation(cfg)
        policy = OraclePolicy(sim.truth, cache=own)
        sim.run(policy, 5)
        assert policy.cache is own
        assert own.stats()["assignment"]["misses"] == 5


class TestFastBuild:
    def test_matches_reference_build_on_windowed_slots(self):
        cfg = ExperimentConfig.small(horizon=12)
        sim = build_simulation(cfg)
        from repro.env.window import precompute_window

        window = precompute_window(
            sim.workload,
            0,
            12,
            np.random.default_rng(3),
            context_cells=sim.truth.context_cells,
        )
        for slot in window.slots:
            ref = build_slot_problem(slot, sim.truth, cfg.capacity, cfg.alpha, cfg.beta)
            fast = build_slot_problem_fast(
                slot, sim.truth, cfg.capacity, cfg.alpha, cfg.beta
            )
            np.testing.assert_array_equal(fast.edge_scn, ref.edge_scn)
            np.testing.assert_array_equal(fast.edge_task, ref.edge_task)
            np.testing.assert_array_equal(fast.g, ref.g)
            np.testing.assert_array_equal(fast.v, ref.v)
            np.testing.assert_array_equal(fast.q, ref.q)


class TestFastRound:
    def test_matches_reference_round(self, rng):
        for trial in range(25):
            p = random_problem(
                rng,
                num_scns=int(rng.integers(2, 7)),
                beta=float(rng.uniform(2.0, 8.0)),
            )
            x = rng.random(p.num_edges) * (rng.random(p.num_edges) > 0.3)
            ref = _greedy_round(p, x)
            fast = _greedy_round_fast(p, x)
            np.testing.assert_array_equal(fast.scn, ref.scn)
            np.testing.assert_array_equal(fast.task, ref.task)

    def test_empty_support(self, rng):
        p = random_problem(rng)
        fast = _greedy_round_fast(p, np.zeros(p.num_edges))
        assert fast.scn.size == 0


class TestGoldenModes:
    """Frozen per-mode Oracle trajectories on the tiny fixture.

    Regenerate (only on an intentional solver change) with::

        PYTHONPATH=src:. python tests/baselines/regen_oracle_golden.py
    """

    @pytest.mark.parametrize("mode", ["lp", "greedy", "dual"])
    def test_assignments_match_golden(self, mode):
        golden = json.loads(GOLDEN.read_text())[mode]
        cfg = ExperimentConfig.tiny(horizon=25, oracle_mode=mode, oracle_cache=False)
        res = _oracle_run(cfg, 25)
        assert res.accepted.astype(int).tolist() == golden["accepted"]
        assert float(res.reward.sum()) == golden["total_reward"]
