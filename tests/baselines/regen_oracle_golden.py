"""Regenerate the Oracle per-mode golden trajectories (tiny fixture).

Run only when a solver change intentionally moves the Oracle's decisions::

    PYTHONPATH=src:. python tests/baselines/regen_oracle_golden.py

and review the diff of ``golden/oracle_modes.json`` before committing.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy

MODES = ("lp", "greedy", "dual")
OUT = Path(__file__).parent / "golden" / "oracle_modes.json"


def main() -> None:
    golden: dict[str, dict] = {}
    for mode in MODES:
        cfg = ExperimentConfig.tiny(horizon=25, oracle_mode=mode, oracle_cache=False)
        sim = build_simulation(cfg)
        res = sim.run(make_policy("Oracle", cfg, sim.truth), 25)
        golden[mode] = {
            "accepted": res.accepted.astype(int).tolist(),
            "total_reward": float(res.reward.sum()),
        }
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
