"""Integration tests: the paper's qualitative claims on a small instance.

These assert the *shape* of the evaluation results (who wins, in which
direction metrics move), not absolute numbers — see EXPERIMENTS.md.
Marked module-scope so the (seconds-long) simulations run once.
"""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.metrics.ratio import performance_ratio
from repro.metrics.regret import regret_series, sublinearity_exponent
from repro.metrics.violations import per_slot_violation_rate

CFG = ExperimentConfig.small(horizon=1500)
POLICIES = ("Oracle", "LFSC", "vUCB", "FML", "Random")


@pytest.fixture(scope="module")
def results():
    return run_experiment(CFG, POLICIES, workers=None)


class TestFig2Shape:
    def test_lfsc_reward_close_to_oracle(self, results):
        """Fig 2(a): LFSC's cumulative reward approaches the Oracle's."""
        ratio = results["LFSC"].total_reward / results["Oracle"].total_reward
        assert ratio > 0.8

    def test_constraint_blind_baselines_exceed_oracle_reward(self, results):
        """vUCB and FML out-earn the Oracle because they ignore α and β."""
        for name in ("vUCB", "FML"):
            assert results[name].total_reward > results["Oracle"].total_reward

    def test_random_lowest_reward(self, results):
        rewards = {n: r.total_reward for n, r in results.items()}
        assert min(rewards, key=rewards.get) == "Random"

    def test_lfsc_violations_below_all_learning_baselines(self, results):
        for name in ("vUCB", "FML", "Random"):
            assert (
                results["LFSC"].total_violations < results[name].total_violations
            )

    def test_lfsc_violation_rate_decreases(self, results):
        """LFSC learns to respect constraints: late rate < early rate."""
        rate = per_slot_violation_rate(results["LFSC"], window=100)
        early = rate[: len(rate) // 4].mean()
        late = rate[-len(rate) // 4 :].mean()
        assert late < early * 0.85

    def test_random_violation_rate_flat(self, results):
        rate = per_slot_violation_rate(results["Random"], window=100)
        early = rate[: len(rate) // 4].mean()
        late = rate[-len(rate) // 4 :].mean()
        assert abs(late - early) < 0.15 * early

    def test_lfsc_late_reward_approaches_oracle(self, results):
        window = 300
        lfsc = results["LFSC"].reward[-window:].mean()
        oracle = results["Oracle"].reward[-window:].mean()
        assert lfsc > 0.85 * oracle


class TestRegret:
    def test_lfsc_average_regret_decreases(self, results):
        series = regret_series(results["LFSC"], results["Oracle"])
        avg = series / np.arange(1, len(series) + 1)
        assert avg[-1] < avg[len(avg) // 5]

    def test_lfsc_regret_sublinear(self, results):
        series = regret_series(results["LFSC"], results["Oracle"])
        if series[-1] > 0:
            assert sublinearity_exponent(series) < 1.0

    def test_random_regret_linear(self, results):
        series = regret_series(results["Random"], results["Oracle"])
        assert sublinearity_exponent(series) > 0.9


class TestPerformanceRatio:
    def test_lfsc_ratio_beats_random(self, results):
        assert performance_ratio(results["LFSC"]) > performance_ratio(
            results["Random"]
        )

    def test_lfsc_ratio_competitive_with_reward_chasers(self, results):
        """LFSC's reward/violation balance matches or beats vUCB's and FML's."""
        lfsc = performance_ratio(results["LFSC"])
        for name in ("vUCB", "FML"):
            assert lfsc > 0.9 * performance_ratio(results[name])


class TestDeterminism:
    def test_full_experiment_reproducible(self):
        cfg = ExperimentConfig.tiny(horizon=30)
        a = run_experiment(cfg, ("LFSC", "Random"))
        b = run_experiment(cfg, ("LFSC", "Random"))
        for name in a:
            np.testing.assert_array_equal(a[name].reward, b[name].reward)
            np.testing.assert_array_equal(
                a[name].violation_qos, b[name].violation_qos
            )
