"""Every example script must at least compile (syntax + imports)."""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # executes imports, not main()
    assert hasattr(module, "main")
