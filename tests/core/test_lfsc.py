"""Tests for repro.core.lfsc — the LFSC policy end to end."""

import numpy as np
import pytest

from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition
from repro.core.lfsc import LFSCPolicy
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.network import NetworkConfig
from repro.env.processes import PiecewiseConstantTruth
from repro.env.simulator import Simulation
from repro.env.workload import SyntheticWorkload

from tests.conftest import make_slot


def make_policy(**overrides) -> LFSCPolicy:
    cfg = LFSCConfig(
        partition=ContextPartition(dims=3, parts=2),
        gamma=0.1,
        eta=0.05,
        delta=0.05,
    ).with_overrides(**overrides)
    policy = LFSCPolicy(cfg)
    policy.reset(
        NetworkConfig(num_scns=2, capacity=2, alpha=1.0, beta=3.0),
        horizon=100,
        rng=np.random.default_rng(0),
    )
    return policy


def run_sim(policy_cfg=None, horizon=300, seed=0):
    network = NetworkConfig(num_scns=3, capacity=3, alpha=1.5, beta=4.5)
    sim = Simulation(
        network=network,
        workload=SyntheticWorkload(
            features=TaskFeatureModel(),
            coverage_model=CoverageSampler(num_scns=3, k_min=6, k_max=12),
        ),
        truth=PiecewiseConstantTruth(num_scns=3, dims=3, cells_per_dim=2, seed=5),
        seed=seed,
    )
    policy = LFSCPolicy(policy_cfg) if policy_cfg else LFSCPolicy(
        LFSCConfig.from_theorem(12, 3, horizon, parts=2)
    )
    return sim.run(policy, horizon), policy


class TestLifecycle:
    def test_reset_initializes_uniform_weights(self):
        policy = make_policy()
        assert policy.log_w.shape == (2, 8)
        assert (policy.log_w == 0).all()

    def test_select_before_reset_raises(self, rng):
        policy = LFSCPolicy()
        slot = make_slot(rng.random((3, 3)), [[0, 1], [1, 2]])
        with pytest.raises(RuntimeError, match="reset"):
            policy.select(slot)

    def test_update_without_select_raises(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((3, 3)), [[0, 1], [1, 2]])
        assignment = policy.select(slot)
        from repro.env.simulator import SlotFeedback

        k = len(assignment)
        fb = SlotFeedback(assignment, np.ones(k), np.ones(k), np.ones(k), np.ones(k))
        policy.update(slot, fb)
        with pytest.raises(RuntimeError, match="select"):
            policy.update(slot, fb)  # cache consumed


class TestSelect:
    def test_assignment_valid(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((6, 3)), [[0, 1, 2, 3], [2, 3, 4, 5]])
        assignment = policy.select(slot)
        assignment.validate(slot, capacity=2)

    def test_fills_capacity_when_possible(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((8, 3)), [[0, 1, 2, 3], [4, 5, 6, 7]])
        assignment = policy.select(slot)
        assert len(assignment) == 4  # both SCNs filled to c=2

    def test_handles_empty_coverage(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((3, 3)), [[], [0, 1, 2]])
        assignment = policy.select(slot)
        assignment.validate(slot, capacity=2)
        assert (assignment.scn == 1).all()

    def test_deterministic_mode_repeatable(self, rng):
        ctx = rng.random((6, 3))
        picks = []
        for _ in range(2):
            policy = make_policy(assignment_mode="deterministic", tie_jitter=0.0)
            slot = make_slot(ctx, [[0, 1, 2], [3, 4, 5]])
            picks.append(policy.select(slot).task.tolist())
        assert picks[0] == picks[1]


class TestUpdate:
    def _roundtrip(self, policy, slot):
        from repro.env.simulator import SlotFeedback

        assignment = policy.select(slot)
        k = len(assignment)
        fb = SlotFeedback(
            assignment,
            u=np.full(k, 0.8),
            v=np.ones(k),
            q=np.full(k, 1.2),
            g=np.full(k, 0.8 / 1.2),
        )
        policy.update(slot, fb)
        return assignment

    def test_weights_change_after_update(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((6, 3)), [[0, 1, 2, 3], [2, 3, 4, 5]])
        before = policy.log_w.copy()
        self._roundtrip(policy, slot)
        assert not np.array_equal(policy.log_w, before)

    def test_stats_observe_assigned_tasks(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((6, 3)), [[0, 1, 2, 3], [2, 3, 4, 5]])
        assignment = self._roundtrip(policy, slot)
        assert policy.stats.total_observations() == len(assignment)

    def test_multipliers_move_under_violation(self, rng):
        # alpha=1.0 but v=0 everywhere -> QoS multiplier must grow.
        from repro.env.simulator import SlotFeedback

        policy = make_policy()
        slot = make_slot(rng.random((6, 3)), [[0, 1, 2], [3, 4, 5]])
        assignment = policy.select(slot)
        k = len(assignment)
        fb = SlotFeedback(assignment, np.zeros(k), np.zeros(k), np.full(k, 2.0), np.zeros(k))
        policy.update(slot, fb)
        assert (policy.multipliers.qos > 0).all()
        assert (policy.multipliers.resource > 0).all()  # 2q per task > beta share

    def test_lagrangian_off_freezes_multipliers(self, rng):
        from repro.env.simulator import SlotFeedback

        policy = make_policy(use_lagrangian=False)
        slot = make_slot(rng.random((6, 3)), [[0, 1, 2], [3, 4, 5]])
        assignment = policy.select(slot)
        k = len(assignment)
        fb = SlotFeedback(assignment, np.zeros(k), np.zeros(k), np.full(k, 2.0), np.zeros(k))
        policy.update(slot, fb)
        assert (policy.multipliers.qos == 0).all()

    def test_slot_counter_advances(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((4, 3)), [[0, 1], [2, 3]])
        assert policy.t == 0
        self._roundtrip(policy, slot)
        assert policy.t == 1

    def test_multiplier_history_recorded(self, rng):
        policy = make_policy()
        slot = make_slot(rng.random((4, 3)), [[0, 1], [2, 3]])
        self._roundtrip(policy, slot)
        assert policy.multiplier_history_qos.shape == (100, 2)


class TestLearning:
    def test_weights_concentrate_on_better_cube(self):
        """With one clearly superior cube, its weight share must grow."""
        res, policy = run_sim(horizon=400)
        shares = policy.weights_snapshot()
        # At least one SCN should have a dominant cube by now.
        assert shares.max() > 2.0 / policy.config.partition.num_cubes

    def test_weights_snapshot_rows_normalized(self):
        _, policy = run_sim(horizon=50)
        np.testing.assert_allclose(policy.weights_snapshot().sum(axis=1), 1.0)

    def test_reward_improves_over_time(self):
        res, _ = run_sim(horizon=600)
        third = len(res.reward) // 3
        assert res.reward[-third:].mean() > res.reward[:third].mean() * 0.95

    def test_log_weights_stay_finite(self):
        _, policy = run_sim(horizon=400)
        assert np.isfinite(policy.log_w).all()

    def test_run_deterministic(self):
        r1, _ = run_sim(horizon=100, seed=3)
        r2, _ = run_sim(horizon=100, seed=3)
        np.testing.assert_array_equal(r1.reward, r2.reward)

    def test_depround_and_deterministic_modes_both_run(self):
        for mode in ("depround", "deterministic"):
            cfg = LFSCConfig.from_theorem(12, 3, 100, parts=2).with_overrides(
                assignment_mode=mode
            )
            res, _ = run_sim(policy_cfg=cfg, horizon=100)
            assert res.total_reward > 0
