"""Tests for repro.core.adaptive — zooming partition + adaptive LFSC."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveLFSCPolicy, AdaptivePartition
from repro.core.config import LFSCConfig
from repro.experiments.runner import ExperimentConfig, build_simulation


def make_partition(**kw) -> AdaptivePartition:
    params = dict(dims=2, max_leaves=64, split_base=10.0, split_rho=1.0)
    params.update(kw)
    return AdaptivePartition(**params)


class TestAdaptivePartition:
    def test_root_covers_everything(self, rng):
        part = make_partition()
        ids = part.assign(rng.random((50, 2)))
        assert (ids == 0).all()

    def test_boundary_points_assigned(self):
        part = make_partition()
        ids = part.assign(np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 1.0]]))
        assert ids.shape == (3,)

    def test_split_after_threshold(self):
        part = make_partition(split_base=5.0)
        splits = part.observe(np.zeros(5, dtype=np.int64))
        assert len(splits) == 1
        parent, children = splits[0]
        assert parent == 0
        assert len(children) == 4  # 2^2
        assert part.num_leaves == 4

    def test_no_split_below_threshold(self):
        part = make_partition(split_base=5.0)
        assert part.observe(np.zeros(4, dtype=np.int64)) == []
        assert part.num_leaves == 1

    def test_children_partition_parent_exactly(self, rng):
        part = make_partition(split_base=1.0)
        part.observe(np.zeros(2, dtype=np.int64))
        ctx = rng.random((200, 2))
        ids = part.assign(ctx)
        # Each context lands in exactly one child, and quadrants match.
        for i, (x, y) in enumerate(ctx):
            expected_corner = (1 if x >= 0.5 else 0) + (2 if y >= 0.5 else 0)
            # child ids are allocated in corner order 1..4
            assert ids[i] == 1 + expected_corner

    def test_deeper_levels_need_more_evidence(self):
        part = make_partition(split_base=4.0, split_rho=2.0)
        assert part.split_threshold(0) == 4.0
        assert part.split_threshold(1) == 16.0
        assert part.split_threshold(2) == 64.0

    def test_second_level_split(self):
        part = make_partition(split_base=2.0, split_rho=0.0)
        part.observe(np.zeros(2, dtype=np.int64))  # split root
        child = part.assign(np.array([[0.1, 0.1]]))[0]
        part.observe(np.full(2, child, dtype=np.int64))
        assert part.num_leaves == 7  # 4 - 1 + 4
        assert part.level_of(part.assign(np.array([[0.05, 0.05]]))[0]) == 2

    def test_max_leaves_respected(self):
        part = make_partition(max_leaves=5, split_base=1.0)
        part.observe(np.zeros(1, dtype=np.int64))  # 4 leaves
        child = part.assign(np.array([[0.9, 0.9]]))[0]
        part.observe(np.array([child]))  # would need 4+3=7 > 5
        assert part.num_leaves == 4

    def test_ids_never_reused(self):
        part = make_partition(split_base=1.0)
        splits = part.observe(np.zeros(1, dtype=np.int64))
        _, children = splits[0]
        assert 0 not in children
        assert max(children) < part.num_cubes

    def test_reset(self):
        part = make_partition(split_base=1.0)
        part.observe(np.zeros(1, dtype=np.int64))
        part.reset()
        assert part.num_leaves == 1

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            make_partition().assign(np.array([[1.5, 0.5]]))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdaptivePartition(dims=3, max_leaves=4)


class TestAdaptiveLFSC:
    def test_runs_and_refines(self):
        cfg = ExperimentConfig.small(horizon=200)
        sim = build_simulation(cfg)
        policy = AdaptiveLFSCPolicy(
            cfg.lfsc_config(),
            partition=AdaptivePartition(dims=3, max_leaves=128, split_base=30.0, split_rho=1.0),
        )
        res = sim.run(policy, 200)
        assert res.total_reward > 0
        assert policy.adaptive.num_leaves > 1  # refinement actually happened

    def test_children_inherit_weights(self):
        cfg = ExperimentConfig.small(horizon=150)
        sim = build_simulation(cfg)
        policy = AdaptiveLFSCPolicy(
            cfg.lfsc_config(),
            partition=AdaptivePartition(dims=3, max_leaves=64, split_base=20.0, split_rho=0.0),
        )
        sim.run(policy, 150)
        assert np.isfinite(policy.log_w).all()

    def test_reset_restores_root(self):
        cfg = ExperimentConfig.small(horizon=100)
        sim = build_simulation(cfg)
        policy = AdaptiveLFSCPolicy(
            cfg.lfsc_config(),
            partition=AdaptivePartition(dims=3, max_leaves=64, split_base=10.0, split_rho=0.0),
        )
        sim.run(policy, 100)
        assert policy.adaptive.num_leaves > 1
        sim.run(policy, 50)  # run() calls reset()
        assert np.isfinite(policy.log_w).all()

    def test_comparable_reward_to_fixed_partition(self):
        from repro.core.lfsc import LFSCPolicy

        cfg = ExperimentConfig.small(horizon=400)
        sim = build_simulation(cfg)
        fixed = sim.run(LFSCPolicy(cfg.lfsc_config()), 400)
        adaptive = sim.run(
            AdaptiveLFSCPolicy(
                cfg.lfsc_config(),
                partition=AdaptivePartition(dims=3, max_leaves=128, split_base=40.0, split_rho=1.0),
            ),
            400,
        )
        assert adaptive.total_reward > 0.7 * fixed.total_reward
