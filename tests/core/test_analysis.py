"""Tests for repro.analysis — diagnostics and ASCII plotting."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_plot, sparkline
from repro.analysis.convergence import (
    multiplier_summary,
    weight_concentration,
    weight_entropy,
)
from repro.core.config import LFSCConfig
from repro.core.lfsc import LFSCPolicy
from repro.env.network import NetworkConfig


def fresh_policy(M=3, parts=2) -> LFSCPolicy:
    from repro.core.hypercube import ContextPartition

    policy = LFSCPolicy(LFSCConfig(partition=ContextPartition(dims=3, parts=parts)))
    policy.reset(
        NetworkConfig(num_scns=M, capacity=2, alpha=1.0, beta=3.0),
        horizon=50,
        rng=np.random.default_rng(0),
    )
    return policy


class TestWeightDiagnostics:
    def test_uniform_weights_max_entropy(self):
        policy = fresh_policy()
        np.testing.assert_allclose(weight_entropy(policy), 1.0)

    def test_concentrated_weights_low_entropy(self):
        policy = fresh_policy()
        policy.log_w[0, 0] = 50.0
        assert weight_entropy(policy)[0] < 0.1
        assert weight_entropy(policy)[1] == pytest.approx(1.0)

    def test_unnormalized_entropy_is_log_f(self):
        policy = fresh_policy()
        raw = weight_entropy(policy, normalized=False)
        np.testing.assert_allclose(raw, np.log(8))

    def test_concentration_uniform(self):
        policy = fresh_policy()
        np.testing.assert_allclose(weight_concentration(policy, top_k=2), 2 / 8)

    def test_concentration_top_k_clamped(self):
        policy = fresh_policy()
        np.testing.assert_allclose(weight_concentration(policy, top_k=100), 1.0)

    def test_concentration_validates(self):
        with pytest.raises(ValueError):
            weight_concentration(fresh_policy(), top_k=0)


class TestMultiplierSummary:
    def test_reports_tail_means(self):
        policy = fresh_policy()
        policy.t = 40
        policy.multiplier_history_qos[:40] = 2.0
        policy.multiplier_history_resource[:40] = 1.0
        s = multiplier_summary(policy)
        assert s["lambda_qos_tail_mean"] == pytest.approx(2.0)
        assert s["lambda_resource_tail_mean"] == pytest.approx(1.0)
        assert s["lambda_qos_drift"] == pytest.approx(0.0)

    def test_detects_drift(self):
        policy = fresh_policy()
        policy.t = 40
        policy.multiplier_history_qos[:40] = np.linspace(0, 4, 40)[:, None]
        s = multiplier_summary(policy)
        assert s["lambda_qos_drift"] > 0

    def test_requires_history(self):
        policy = fresh_policy()
        with pytest.raises(RuntimeError):
            multiplier_summary(policy)  # t == 0


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(np.arange(1000), width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_blocks(self):
        s = sparkline(np.arange(8))
        assert s == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiPlot:
    def test_contains_legend_and_bounds(self):
        chart = ascii_plot({"up": np.arange(10), "down": np.arange(10)[::-1]})
        assert "a=up" in chart and "b=down" in chart
        assert "9.00" in chart and "0.00" in chart

    def test_title_rendered(self):
        chart = ascii_plot({"x": [0, 1]}, title="hello")
        assert chart.splitlines()[0] == "hello"

    def test_no_data(self):
        assert ascii_plot({}) == "(no data)"
        assert ascii_plot({"empty": []}) == "(no data)"

    def test_flat_series_does_not_crash(self):
        ascii_plot({"flat": [2.0, 2.0, 2.0]})
