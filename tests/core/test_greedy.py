"""Tests for repro.core.greedy — Alg. 4's collaborative assignment."""

import numpy as np
import pytest

from repro.core.greedy import edges_from_coverage, greedy_select, greedy_select_edges
from repro.solvers.matching import max_weight_b_matching, total_weight


class TestEdgesFromCoverage:
    def test_flattening(self):
        cov = [np.array([0, 2]), np.array([1])]
        w = [np.array([0.5, 0.7]), np.array([0.9])]
        scn, task, weight = edges_from_coverage(cov, w)
        np.testing.assert_array_equal(scn, [0, 0, 1])
        np.testing.assert_array_equal(task, [0, 2, 1])
        np.testing.assert_allclose(weight, [0.5, 0.7, 0.9])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError, match="SCN 0"):
            edges_from_coverage([np.array([0, 1])], [np.array([0.5])])

    def test_list_count_mismatch(self):
        with pytest.raises(ValueError):
            edges_from_coverage([np.array([0])], [])

    def test_empty(self):
        scn, task, w = edges_from_coverage([], [])
        assert scn.size == task.size == w.size == 0


class TestGreedySelectEdges:
    def test_matches_list_entry_point(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            M, n, c = 4, 12, 3
            cov = [np.sort(rng.choice(n, size=rng.integers(0, n + 1), replace=False)) for _ in range(M)]
            w = [rng.random(len(covm)) for covm in cov]
            ref = greedy_select(cov, w, c, n)
            scn, task, weight = edges_from_coverage(cov, w)
            got = greedy_select_edges(scn, task, weight, M, c, n)
            np.testing.assert_array_equal(ref.scn, got.scn)
            np.testing.assert_array_equal(ref.task, got.task)

    def test_empty_edge_list(self):
        empty = np.empty(0, dtype=np.int64)
        asn = greedy_select_edges(empty, empty, np.empty(0), 3, 2, 5)
        assert len(asn) == 0

    def test_output_bounded_by_matching_size(self):
        # M*c = 2 < num_tasks: the preallocated output must not overflow.
        scn = np.array([0, 0, 0, 1, 1, 1])
        task = np.array([0, 1, 2, 3, 4, 5])
        w = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
        asn = greedy_select_edges(scn, task, w, 2, 1, 6)
        assert len(asn) == 2
        np.testing.assert_array_equal(np.sort(asn.scn), [0, 1])


class TestGreedySelect:
    def test_respects_capacity(self):
        cov = [np.arange(5)]
        w = [np.array([0.9, 0.8, 0.7, 0.6, 0.5])]
        a = greedy_select(cov, w, capacity=3, num_tasks=5)
        assert len(a) == 3
        np.testing.assert_array_equal(np.sort(a.task), [0, 1, 2])

    def test_no_duplicate_tasks(self):
        cov = [np.array([0, 1]), np.array([0, 1])]
        w = [np.array([0.9, 0.8]), np.array([0.95, 0.7])]
        a = greedy_select(cov, w, capacity=2, num_tasks=2)
        assert np.unique(a.task).size == a.task.size

    def test_highest_weight_edge_wins_conflicts(self):
        # Task 0 covered by both SCNs; SCN 1 values it more.
        cov = [np.array([0]), np.array([0])]
        w = [np.array([0.5]), np.array([0.9])]
        a = greedy_select(cov, w, capacity=1, num_tasks=1)
        assert len(a) == 1
        assert a.scn[0] == 1

    def test_displaced_scn_takes_next_best(self):
        cov = [np.array([0, 1]), np.array([0])]
        w = [np.array([0.8, 0.3]), np.array([0.9])]
        a = greedy_select(cov, w, capacity=1, num_tasks=2)
        pairs = set(zip(a.scn.tolist(), a.task.tolist()))
        assert pairs == {(1, 0), (0, 1)}

    def test_all_tasks_assigned_when_capacity_allows(self, rng):
        cov = [np.arange(6), np.arange(6)]
        w = [rng.random(6), rng.random(6)]
        a = greedy_select(cov, w, capacity=3, num_tasks=6)
        assert len(a) == 6

    def test_empty_graph(self):
        a = greedy_select([], [], capacity=2, num_tasks=0)
        assert len(a) == 0

    def test_empty_coverage_lists(self):
        a = greedy_select([np.empty(0, np.int64)], [np.empty(0)], capacity=2, num_tasks=3)
        assert len(a) == 0

    def test_deterministic(self, rng):
        cov = [rng.choice(20, 10, replace=False) for _ in range(3)]
        w = [rng.random(10) for _ in range(3)]
        a1 = greedy_select(cov, w, 4, 20)
        a2 = greedy_select(cov, w, 4, 20)
        np.testing.assert_array_equal(a1.scn, a2.scn)
        np.testing.assert_array_equal(a1.task, a2.task)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            greedy_select([], [], capacity=0, num_tasks=0)


class TestApproximationFactor:
    def test_greedy_at_least_half_of_optimum_on_random_graphs(self, rng):
        """The (c+1)-approximation bound; in practice greedy is near-optimal.

        The paper proves weight(greedy) >= weight(opt)/(c+1); empirically it
        is far better — we assert the much stronger 70% on random instances
        and the theoretical bound as a hard floor.
        """
        for trial in range(10):
            M, n, c = 4, 12, 3
            cov = [np.sort(rng.choice(n, 6, replace=False)) for _ in range(M)]
            w = [rng.random(6) for _ in range(M)]
            greedy = greedy_select(cov, w, c, n)
            opt_scn, opt_task = max_weight_b_matching(cov, w, c, n)
            greedy_val = total_weight(greedy.scn, greedy.task, cov, w)
            opt_val = total_weight(opt_scn, opt_task, cov, w)
            assert greedy_val >= opt_val / (c + 1) - 1e-9
            assert greedy_val >= 0.7 * opt_val

    def test_greedy_optimal_on_disjoint_coverage(self, rng):
        # With disjoint coverage there are no conflicts: greedy is optimal.
        cov = [np.arange(0, 5), np.arange(5, 10)]
        w = [rng.random(5), rng.random(5)]
        greedy = greedy_select(cov, w, 3, 10)
        opt_scn, opt_task = max_weight_b_matching(cov, w, 3, 10)
        assert total_weight(greedy.scn, greedy.task, cov, w) == pytest.approx(
            total_weight(opt_scn, opt_task, cov, w)
        )
