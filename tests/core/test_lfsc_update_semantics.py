"""Fine-grained semantics of LFSC's Alg. 3 update.

These tests drive select()/update() with hand-built feedback to pin down
exactly which weights move, in which direction, and which are skipped.
"""

import numpy as np
import pytest

from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition
from repro.core.lfsc import LFSCPolicy
from repro.env.network import NetworkConfig
from repro.env.simulator import Assignment, SlotFeedback
from repro.env.tasks import TaskBatch
from repro.env.workload import SlotWorkload


def make_policy(alpha=0.0, beta=100.0, capacity=2, **cfg_kw) -> LFSCPolicy:
    params = dict(
        partition=ContextPartition(dims=1, parts=4),
        gamma=0.2,
        eta=0.5,
        delta=0.1,
        assignment_mode="deterministic",
        tie_jitter=0.0,
    )
    params.update(cfg_kw)
    policy = LFSCPolicy(LFSCConfig(**params))
    policy.reset(
        NetworkConfig(num_scns=1, capacity=capacity, alpha=alpha, beta=beta),
        horizon=50,
        rng=np.random.default_rng(0),
    )
    return policy


def slot_with_contexts(xs) -> SlotWorkload:
    ctx = np.asarray(xs, dtype=float)[:, None]
    return SlotWorkload(
        t=0,
        tasks=TaskBatch.from_contexts(ctx),
        coverage=[np.arange(len(xs), dtype=np.int64)],
    )


def feed(policy, slot, u, v, q):
    assignment = policy.select(slot)
    order = np.argsort(assignment.task)
    tasks = assignment.task[order]
    fb = SlotFeedback(
        Assignment(scn=assignment.scn[order], task=tasks),
        u=np.asarray(u, dtype=float)[tasks],
        v=np.asarray(v, dtype=float)[tasks],
        q=np.asarray(q, dtype=float)[tasks],
        g=(np.asarray(u, dtype=float) * np.asarray(v, dtype=float) / np.asarray(q, dtype=float))[tasks],
    )
    policy.update(slot, fb)
    return assignment


class TestWeightDirections:
    def test_good_selected_cube_gains_weight(self):
        # One task per cube; cubes 0 and 1 covered; capacity 2 selects both.
        policy = make_policy()
        slot = slot_with_contexts([0.1, 0.35, 0.6, 0.85])  # cubes 0..3
        before = policy.log_w.copy()
        feed(policy, slot, u=np.ones(4), v=np.ones(4), q=np.ones(4))
        # All four covered, two selected (capped p=1 excluded from updates).
        # With capacity 2 < K=4, two tasks selected with high utility -> their
        # cubes' weights rose; unselected cubes unchanged (estimate 0).
        changed = np.flatnonzero(policy.log_w[0] != before[0])
        assert changed.size >= 1
        assert (policy.log_w[0][changed] > before[0][changed]).all()

    def test_unselected_cubes_unchanged(self):
        policy = make_policy()
        slot = slot_with_contexts([0.1, 0.35, 0.6, 0.85])
        assignment = feed(policy, slot, np.ones(4), np.ones(4), np.ones(4))
        untouched = np.setdiff1d(np.arange(4), assignment.task)
        # Cube f(i) == i here (one task per cube, parts=4).
        for cube in untouched:
            assert policy.log_w[0, cube] == 0.0

    def test_worthless_selected_cube_loses_weight_under_duals(self):
        # v=0 (never completes) with a positive QoS multiplier should push
        # the selected cube's weight down once lambda_qos > 0.
        policy = make_policy(alpha=2.0, beta=100.0)
        slot = slot_with_contexts([0.1, 0.35, 0.6, 0.85])
        # First update raises lambda (shortfall), second applies it.
        feed(policy, slot, np.zeros(4), np.zeros(4), np.ones(4))
        assert policy.multipliers.qos[0] > 0
        before = policy.log_w.copy()
        assignment = feed(policy, slot, np.zeros(4), np.zeros(4), np.ones(4))
        for cube in assignment.task:
            assert policy.log_w[0, cube] < before[0, cube]

    def test_capped_cubes_skipped(self):
        # K = capacity: every task capped at p=1 -> Alg. 3 line 12 skips all.
        policy = make_policy(capacity=4)
        slot = slot_with_contexts([0.1, 0.35, 0.6, 0.85])
        before = policy.log_w.copy()
        feed(policy, slot, np.ones(4), np.ones(4), np.ones(4))
        np.testing.assert_array_equal(policy.log_w, before)

    def test_resource_heavy_cube_penalized_relative_to_light(self):
        policy = make_policy(alpha=0.0, beta=2.0)
        slot = slot_with_contexts([0.1, 0.35, 0.6, 0.85])
        q = np.array([2.0, 1.0, 2.0, 1.0])
        # Build up lambda_resource (beta=2 but consumption ~3-4).
        for _ in range(3):
            feed(policy, slot, np.full(4, 0.5), np.ones(4), q)
        assert policy.multipliers.resource[0] > 0
        # Compare drift of a heavy (q=2) vs light (q=1) cube when selected.
        before = policy.log_w.copy()
        assignment = feed(policy, slot, np.full(4, 0.5), np.ones(4), q)
        drifts = {int(c): policy.log_w[0, c] - before[0, c] for c in assignment.task}
        heavy = [d for c, d in drifts.items() if q[c] == 2.0]
        light = [d for c, d in drifts.items() if q[c] == 1.0]
        if heavy and light:
            assert max(heavy) < min(light)


class TestEstimateMagnitudes:
    def test_importance_weighting_scales_by_probability(self):
        policy = make_policy()
        slot = slot_with_contexts([0.1, 0.35, 0.6, 0.85])
        assignment = policy.select(slot)
        cache_probs = policy._cache.probs[0]
        tasks = assignment.task
        fb = SlotFeedback(
            assignment,
            u=np.ones(len(tasks)),
            v=np.ones(len(tasks)),
            q=np.ones(len(tasks)),
            g=np.ones(len(tasks)),
        )
        policy.update(slot, fb)
        # For a selected, uncapped task i: Δlog w = η·(g + 0 − 0)/p_i
        # (alpha=0, beta huge -> centering terms vanish with λ=0).
        for j, i in enumerate(tasks):
            p = cache_probs.p[i]
            if cache_probs.capped[i]:
                continue
            expected = 0.5 * (1.0 / p)
            assert policy.log_w[0, i] == pytest.approx(min(expected, 10.0))
