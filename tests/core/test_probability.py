"""Tests for repro.core.probability — Alg. 2's capped probabilities."""

import numpy as np
import pytest

from repro.core.probability import cap_threshold, capped_probabilities


class TestCappedProbabilities:
    def test_sum_equals_capacity(self, rng):
        w = rng.random(20) + 0.01
        cp = capped_probabilities(w, capacity=5, gamma=0.1)
        assert cp.p.sum() == pytest.approx(5.0, abs=1e-9)

    def test_probabilities_in_unit_interval(self, rng):
        for _ in range(20):
            w = rng.random(15) * rng.choice([1e-6, 1.0, 1e6]) + 1e-9
            cp = capped_probabilities(w, capacity=4, gamma=0.05)
            assert cp.p.min() > 0.0
            assert cp.p.max() <= 1.0 + 1e-12

    def test_uniform_weights_uniform_probs(self):
        cp = capped_probabilities(np.ones(10), capacity=4, gamma=0.2)
        np.testing.assert_allclose(cp.p, 0.4)
        assert not cp.capped.any()

    def test_monotone_in_weight(self, rng):
        w = np.sort(rng.random(12)) + 0.01
        cp = capped_probabilities(w, capacity=3, gamma=0.1)
        assert (np.diff(cp.p) >= -1e-12).all()

    def test_heavy_weight_capped_at_one(self):
        w = np.array([100.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        cp = capped_probabilities(w, capacity=2, gamma=0.1)
        assert cp.capped[0]
        assert cp.p[0] == pytest.approx(1.0, abs=1e-9)
        assert cp.p.sum() == pytest.approx(2.0, abs=1e-9)

    def test_multiple_capped(self):
        w = np.array([50.0, 50.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        cp = capped_probabilities(w, capacity=3, gamma=0.1)
        assert cp.capped[:2].all()
        np.testing.assert_allclose(cp.p[:2], 1.0, atol=1e-9)
        assert cp.p.sum() == pytest.approx(3.0, abs=1e-9)

    def test_fewer_tasks_than_capacity_all_selected(self):
        cp = capped_probabilities(np.array([3.0, 1.0]), capacity=5, gamma=0.1)
        np.testing.assert_array_equal(cp.p, [1.0, 1.0])
        assert cp.capped.all()

    def test_gamma_one_pure_exploration(self):
        w = np.array([10.0, 1.0, 1.0, 1.0])
        cp = capped_probabilities(w, capacity=2, gamma=1.0)
        np.testing.assert_allclose(cp.p, 0.5)

    def test_exploration_floor(self, rng):
        # Every task retains at least gamma*c/K probability.
        w = rng.random(30) * 1000 + 1e-9
        gamma, c = 0.2, 6
        cp = capped_probabilities(w, capacity=c, gamma=gamma)
        assert cp.p.min() >= gamma * c / 30 - 1e-12

    def test_empty_input(self):
        cp = capped_probabilities(np.empty(0), capacity=3, gamma=0.1)
        assert cp.p.size == 0

    def test_extreme_weight_spread_no_nan(self):
        # Regression: subnormal tails used to cancel to a zero threshold.
        w = np.array([1.0, 1.0, 2e-18, 3e-18, 1e-18, 5e-18, 4e-18, 2.5e-18, 1.5e-18, 1e-18])
        cp = capped_probabilities(w, capacity=6, gamma=0.05)
        assert np.isfinite(cp.p).all()
        assert cp.p.sum() == pytest.approx(6.0, abs=1e-6)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            capped_probabilities(np.array([1.0, 0.0]), capacity=1, gamma=0.1)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ValueError):
            capped_probabilities(np.ones(3), capacity=1, gamma=0.0)

    def test_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            capped_probabilities(np.ones((2, 2)), capacity=1, gamma=0.1)


class TestCapThreshold:
    def test_threshold_equation_holds(self, rng):
        for _ in range(50):
            w = rng.random(12) * 10 + 0.01
            K, c, gamma = len(w), 4, 0.1
            ratio = (1.0 / c - gamma / K) / (1.0 - gamma)
            if w.max() < ratio * w.sum():
                continue
            e = cap_threshold(w, ratio)
            capped = w >= e * (1 - 1e-12)
            denom = e * capped.sum() + w[~capped].sum()
            assert e / denom == pytest.approx(ratio, rel=1e-6)

    def test_flat_weights_tie(self):
        # All weights equal at exactly the cap boundary: the threshold must
        # coincide with the common weight (capping is then a no-op).
        e = cap_threshold(np.ones(4), ratio=0.25)
        assert e == pytest.approx(1.0)

    def test_exact_membership_under_extreme_spread(self):
        # Regression for the tolerance bug: a mid-magnitude weight close to
        # the k=1 threshold must not be double-counted into the capped set.
        w = np.array([1.0e-3, 3.07692301e11] + [1e-12] * 9)
        cp = capped_probabilities(w, capacity=4, gamma=0.5)
        assert cp.p.sum() == pytest.approx(4.0, rel=1e-9)
        assert np.isfinite(cp.p).all() and cp.p.max() <= 1.0 + 1e-12
