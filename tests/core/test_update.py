"""Tests for repro.core.update — the weight update machinery."""

import numpy as np
import pytest

from repro.core.update import (
    apply_weight_update,
    lagrangian_utility,
    recenter_log_weights,
    weight_exponents,
)


class TestLagrangianUtility:
    def test_zero_multipliers_is_reward(self):
        g = np.array([0.3, 0.7])
        out = lagrangian_utility(g, np.ones(2), np.ones(2), 0.0, 0.0)
        np.testing.assert_allclose(out, g)

    def test_qos_term_rewards_completion(self):
        high_v = lagrangian_utility(np.zeros(1), np.array([0.9]), np.ones(1), 2.0, 0.0)
        low_v = lagrangian_utility(np.zeros(1), np.array([0.1]), np.ones(1), 2.0, 0.0)
        assert high_v[0] > low_v[0]

    def test_resource_term_penalizes_consumption(self):
        cheap = lagrangian_utility(np.zeros(1), np.zeros(1), np.array([1.0]), 0.0, 2.0)
        costly = lagrangian_utility(np.zeros(1), np.zeros(1), np.array([2.0]), 0.0, 2.0)
        assert cheap[0] > costly[0]

    def test_targets_shift_uniformly(self):
        g, v, q = np.array([0.5, 0.1]), np.array([0.9, 0.2]), np.array([1.1, 1.9])
        plain = lagrangian_utility(g, v, q, 1.5, 2.5)
        centered = lagrangian_utility(
            g, v, q, 1.5, 2.5, qos_target=0.75, resource_target=1.35
        )
        diffs = plain - centered
        assert diffs[0] == pytest.approx(diffs[1])  # same shift for every task

    def test_feasible_helpful_task_positive_when_centered(self):
        # v above the per-task QoS share, q below the resource share.
        out = lagrangian_utility(
            np.array([0.2]), np.array([0.95]), np.array([1.1]),
            3.0, 3.0, qos_target=0.75, resource_target=1.35,
        )
        assert out[0] > 0


class TestWeightExponents:
    def test_scaling_by_eta(self):
        out = weight_exponents(np.array([2.0, -3.0]), eta=0.1)
        np.testing.assert_allclose(out, [0.2, -0.3])

    def test_clipping(self):
        out = weight_exponents(np.array([1e9, -1e9]), eta=1.0, max_exponent=5.0)
        np.testing.assert_allclose(out, [5.0, -5.0])


class TestApplyWeightUpdate:
    def test_in_place_addition(self):
        row = np.zeros(5)
        apply_weight_update(
            row, np.array([1, 3]), np.array([0.5, -0.2]), np.array([False, False])
        )
        np.testing.assert_allclose(row, [0, 0.5, 0, -0.2, 0])

    def test_skip_mask_respected(self):
        row = np.zeros(4)
        apply_weight_update(
            row, np.array([0, 1]), np.array([1.0, 1.0]), np.array([True, False])
        )
        np.testing.assert_allclose(row, [0, 1.0, 0, 0])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            apply_weight_update(np.zeros(3), np.array([0]), np.array([1.0, 2.0]), np.array([False]))


class TestRecenterLogWeights:
    def test_no_change_below_threshold(self):
        log_w = np.array([[1.0, 2.0], [0.0, -3.0]])
        before = log_w.copy()
        recenter_log_weights(log_w, threshold=50.0)
        np.testing.assert_allclose(log_w, before)

    def test_recenters_drifted_rows(self):
        log_w = np.array([[100.0, 99.0], [0.0, 1.0]])
        recenter_log_weights(log_w, threshold=50.0)
        np.testing.assert_allclose(log_w[0], [0.0, -1.0])
        np.testing.assert_allclose(log_w[1], [0.0, 1.0])

    def test_relative_order_preserved(self, rng):
        log_w = rng.normal(80, 5, size=(3, 6))
        order_before = np.argsort(log_w, axis=1)
        recenter_log_weights(log_w, threshold=50.0)
        np.testing.assert_array_equal(np.argsort(log_w, axis=1), order_before)

    def test_floor_bounds_spread(self):
        log_w = np.array([[0.0, -1000.0]])
        recenter_log_weights(log_w, threshold=50.0, floor=-200.0)
        assert log_w[0, 1] == -200.0

    def test_floor_relative_to_row_max(self):
        log_w = np.array([[30.0, -300.0]])
        recenter_log_weights(log_w, threshold=50.0, floor=-200.0)
        assert log_w[0, 1] == pytest.approx(30.0 - 200.0)
