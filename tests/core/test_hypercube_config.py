"""Tests for repro.core.hypercube and repro.core.config."""

import numpy as np
import pytest

from repro.core.config import LFSCConfig
from repro.core.hypercube import ContextPartition


class TestContextPartition:
    def test_paper_default_27_cubes(self):
        part = ContextPartition()
        assert part.num_cubes == 27
        assert part.cube_side == pytest.approx(1 / 3)

    def test_assign_matches_grid(self, rng):
        part = ContextPartition(dims=2, parts=4)
        ctx = rng.random((100, 2))
        idx = part.assign(ctx)
        assert idx.min() >= 0 and idx.max() < 16

    def test_similar_contexts_same_cube(self):
        part = ContextPartition(dims=2, parts=3)
        a = part.assign(np.array([[0.40, 0.40]]))
        b = part.assign(np.array([[0.45, 0.45]]))
        assert a[0] == b[0]

    def test_centers_shape(self):
        assert ContextPartition(dims=3, parts=2).centers().shape == (8, 3)

    def test_theorem_parts_growth(self):
        # h_T = ceil(T^{1/(2+D)}) grows with T.
        small = ContextPartition.theorem_parts(100, 3)
        big = ContextPartition.theorem_parts(100000, 3)
        assert big > small
        assert small >= 1

    def test_theorem_parts_value(self):
        assert ContextPartition.theorem_parts(32, 3) == int(np.ceil(32 ** (1 / 5)))


class TestLFSCConfig:
    def test_defaults_valid(self):
        cfg = LFSCConfig()
        assert cfg.dual_step == cfg.eta  # eta_dual None falls back

    def test_eta_dual_override(self):
        cfg = LFSCConfig(eta_dual=0.5)
        assert cfg.dual_step == 0.5

    def test_with_overrides(self):
        cfg = LFSCConfig().with_overrides(gamma=0.2)
        assert cfg.gamma == 0.2

    def test_from_theorem_schedule(self):
        cfg = LFSCConfig.from_theorem(max_coverage=100, capacity=20, horizon=10000)
        e = np.e
        K = 100
        gamma = min(1.0, np.sqrt(K * np.log(K / 20) / ((e - 1) * 20 * 10000)))
        assert cfg.gamma == pytest.approx(gamma)
        assert cfg.eta == pytest.approx(gamma / K)
        assert cfg.delta == pytest.approx(1 / 100.0)
        assert cfg.eta_dual == pytest.approx(1 / 100.0)

    def test_from_theorem_gamma_capped_at_one(self):
        cfg = LFSCConfig.from_theorem(max_coverage=1000, capacity=2, horizon=2)
        assert cfg.gamma == 1.0

    def test_from_theorem_tiny_coverage_guard(self):
        # K <= c would make ln(K/c) <= 0; the guard keeps gamma positive.
        cfg = LFSCConfig.from_theorem(max_coverage=2, capacity=5, horizon=100)
        assert 0 < cfg.gamma <= 1.0

    def test_from_theorem_overrides(self):
        cfg = LFSCConfig.from_theorem(50, 10, 1000, gamma=0.3)
        assert cfg.gamma == 0.3

    def test_from_theorem_partition(self):
        cfg = LFSCConfig.from_theorem(50, 10, 1000, dims=2, parts=5)
        assert cfg.partition.dims == 2
        assert cfg.partition.parts == 5

    @pytest.mark.parametrize(
        "bad",
        [
            {"gamma": 0.0},
            {"gamma": 1.5},
            {"eta": -0.1},
            {"delta": 0.0},
            {"assignment_mode": "magic"},
            {"tie_jitter": -1e-9},
            {"lambda_max": 0.0},
        ],
    )
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            LFSCConfig(**bad)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LFSCConfig().gamma = 0.5  # type: ignore[misc]
