"""Tests for repro.core.estimators — IW estimates and cube statistics."""

import numpy as np
import pytest

from repro.core.estimators import (
    CubeStatistics,
    aggregate_by_cube,
    importance_weighted,
)


class TestImportanceWeighted:
    def test_unselected_are_zero(self):
        out = importance_weighted(
            values=np.array([0.5, 0.7]),
            selected=np.array([False, True]),
            probabilities=np.array([0.5, 0.7]),
        )
        assert out[0] == 0.0
        assert out[1] == pytest.approx(1.0)

    def test_unbiasedness(self, rng):
        # E[x * 1(sel)/p] == x when P(sel) == p.
        p = 0.3
        x = 0.8
        n = 40000
        sel = rng.random(n) < p
        est = importance_weighted(
            np.full(n, x), sel, np.full(n, p)
        )
        assert est.mean() == pytest.approx(x, abs=0.02)

    def test_zero_probability_selected_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            importance_weighted(
                np.array([1.0]), np.array([True]), np.array([0.0])
            )

    def test_zero_probability_unselected_ok(self):
        out = importance_weighted(
            np.array([1.0]), np.array([False]), np.array([0.0])
        )
        assert out[0] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            importance_weighted(np.ones(3), np.ones(2, dtype=bool), np.ones(3))


class TestAggregateByCube:
    def test_means_per_cube(self):
        means, counts = aggregate_by_cube(
            per_task=np.array([1.0, 3.0, 10.0]),
            cube_idx=np.array([0, 0, 2]),
            num_cubes=4,
        )
        np.testing.assert_allclose(means, [2.0, 0.0, 10.0, 0.0])
        np.testing.assert_array_equal(counts, [2, 0, 1, 0])

    def test_empty(self):
        means, counts = aggregate_by_cube(np.empty(0), np.empty(0, np.int64), 3)
        np.testing.assert_array_equal(means, np.zeros(3))

    def test_negative_values_ok(self):
        means, _ = aggregate_by_cube(np.array([-2.0, 4.0]), np.array([1, 1]), 2)
        assert means[1] == pytest.approx(1.0)


class TestCubeStatistics:
    def test_initial_state(self):
        stats = CubeStatistics(num_scns=2, num_cubes=3)
        assert stats.total_observations() == 0
        assert stats.counts.shape == (2, 3)

    def test_observe_updates_means(self):
        stats = CubeStatistics(num_scns=2, num_cubes=3)
        stats.observe(
            scn_idx=np.array([0, 0]),
            cube_idx=np.array([1, 1]),
            g=np.array([0.2, 0.4]),
            v=np.array([1.0, 0.0]),
            q=np.array([1.0, 2.0]),
        )
        assert stats.mean_g[0, 1] == pytest.approx(0.3)
        assert stats.mean_v[0, 1] == pytest.approx(0.5)
        assert stats.mean_q[0, 1] == pytest.approx(1.5)
        assert stats.counts[0, 1] == 2

    def test_incremental_mean_matches_batch(self, rng):
        stats = CubeStatistics(num_scns=1, num_cubes=2)
        values = rng.random(100)
        for chunk in np.array_split(values, 7):
            k = len(chunk)
            stats.observe(
                np.zeros(k, np.int64), np.zeros(k, np.int64), chunk, chunk, chunk
            )
        assert stats.mean_g[0, 0] == pytest.approx(values.mean())
        assert stats.counts[0, 0] == 100

    def test_distinct_pairs_tracked_separately(self):
        stats = CubeStatistics(num_scns=2, num_cubes=2)
        stats.observe(
            np.array([0, 1]), np.array([0, 1]),
            np.array([1.0, 3.0]), np.array([1.0, 0.0]), np.array([1.0, 2.0]),
        )
        assert stats.mean_g[0, 0] == 1.0
        assert stats.mean_g[1, 1] == 3.0
        assert stats.mean_g[0, 1] == 0.0

    def test_empty_observe_noop(self):
        stats = CubeStatistics(num_scns=1, num_cubes=1)
        stats.observe(np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), np.empty(0), np.empty(0))
        assert stats.total_observations() == 0

    def test_misaligned_rejected(self):
        stats = CubeStatistics(num_scns=1, num_cubes=1)
        with pytest.raises(ValueError):
            stats.observe(np.zeros(2, np.int64), np.zeros(3, np.int64), np.zeros(2), np.zeros(2), np.zeros(2))

    def test_ucb_index_unvisited_infinite(self):
        stats = CubeStatistics(num_scns=1, num_cubes=2)
        stats.observe(np.array([0]), np.array([0]), np.array([0.5]), np.array([1.0]), np.array([1.0]))
        idx = stats.ucb_index(10)
        assert np.isinf(idx[0, 1])
        assert np.isfinite(idx[0, 0])

    def test_ucb_bonus_shrinks_with_count(self):
        stats = CubeStatistics(num_scns=1, num_cubes=1)
        stats.observe(np.array([0]), np.array([0]), np.array([0.5]), np.array([1.0]), np.array([1.0]))
        early = stats.ucb_index(100)[0, 0]
        for _ in range(50):
            stats.observe(np.array([0]), np.array([0]), np.array([0.5]), np.array([1.0]), np.array([1.0]))
        late = stats.ucb_index(100)[0, 0]
        assert late < early
