"""Tests for repro.core.multipliers — Lagrangian dual dynamics."""

import numpy as np
import pytest

from repro.core.multipliers import LagrangeMultipliers


def make(eta=0.1, delta=0.1, lam_max=None, M=3) -> LagrangeMultipliers:
    return LagrangeMultipliers(num_scns=M, eta=eta, delta=delta, lambda_max=lam_max)


class TestLagrangeMultipliers:
    def test_starts_at_zero(self):
        lm = make()
        assert (lm.qos == 0).all() and (lm.resource == 0).all()

    def test_qos_grows_under_shortfall(self):
        lm = make()
        lm.update(completed=np.zeros(3), consumption=np.zeros(3), alpha=2.0, beta=5.0)
        assert (lm.qos > 0).all()
        assert (lm.resource == 0).all()  # consumption below beta

    def test_resource_grows_under_overuse(self):
        lm = make()
        lm.update(completed=np.full(3, 5.0), consumption=np.full(3, 9.0), alpha=2.0, beta=5.0)
        assert (lm.resource > 0).all()
        assert (lm.qos == 0).all()

    def test_projection_at_zero(self):
        lm = make()
        # Constraint over-satisfied -> gradient negative -> clipped at 0.
        lm.update(np.full(3, 10.0), np.zeros(3), alpha=2.0, beta=5.0)
        assert (lm.qos == 0).all()

    def test_decay_pulls_down_when_satisfied(self):
        lm = make(eta=0.5, delta=0.5)
        lm.update(np.zeros(3), np.zeros(3), alpha=2.0, beta=5.0)
        high = lm.qos.copy()
        lm.update(np.full(3, 2.0), np.zeros(3), alpha=2.0, beta=5.0)  # exactly met
        assert (lm.qos < high).all()

    def test_clip_at_lambda_max(self):
        lm = make(eta=10.0, delta=0.001, lam_max=1.5)
        for _ in range(50):
            lm.update(np.zeros(3), np.full(3, 100.0), alpha=2.0, beta=5.0)
        assert (lm.qos <= 1.5).all()
        assert (lm.resource <= 1.5).all()

    def test_default_lambda_max_is_induction_bound(self):
        lm = make(eta=0.2, delta=0.5)
        assert lm.lambda_max == pytest.approx(1.0 / (0.2 * 0.5))

    def test_per_scn_independence(self):
        lm = make()
        completed = np.array([0.0, 5.0, 0.0])
        lm.update(completed, np.zeros(3), alpha=2.0, beta=5.0)
        assert lm.qos[0] > 0 and lm.qos[1] == 0 and lm.qos[2] > 0

    def test_equilibrium_value(self):
        # Constant shortfall s: fixed point lambda* = s/delta.
        lm = make(eta=0.2, delta=0.1, lam_max=1e9)
        for _ in range(3000):
            lm.update(np.full(3, 1.0), np.zeros(3), alpha=2.0, beta=5.0)
        np.testing.assert_allclose(lm.qos, 1.0 / 0.1, rtol=1e-3)

    def test_reset(self):
        lm = make()
        lm.update(np.zeros(3), np.full(3, 9.0), alpha=2.0, beta=5.0)
        lm.reset()
        assert (lm.qos == 0).all() and (lm.resource == 0).all()

    def test_shape_validated(self):
        lm = make()
        with pytest.raises(ValueError):
            lm.update(np.zeros(2), np.zeros(3), alpha=1.0, beta=1.0)

    @pytest.mark.parametrize("bad", [{"eta": 0}, {"delta": -1.0}, {"lam_max": -2.0}])
    def test_invalid_params(self, bad):
        kw = dict(eta=0.1, delta=0.1, lam_max=None)
        kw.update(bad)
        with pytest.raises(ValueError):
            make(**kw)
