"""Property tests: capped_probabilities_batch ≡ per-SCN capped_probabilities.

The batched Alg. 2 kernel must reproduce the reference single-segment
implementation bit-for-bit on every segment of every ragged instance — the
batched LFSC slot engine's equivalence guarantee rests on it.
"""

import numpy as np
import pytest

from repro.core.probability import (
    CappedProbabilities,
    capped_probabilities,
    capped_probabilities_batch,
)


def random_instance(rng, *, max_segments=12, max_len=40, extreme=False):
    """A ragged batch: per-segment weights incl. empty and K<=c segments."""
    num_segments = int(rng.integers(1, max_segments + 1))
    lengths = rng.integers(0, max_len + 1, size=num_segments)
    if extreme:
        spans = rng.choice([1.0, 1e10, 1e50, 1e100], size=num_segments)
    else:
        spans = np.ones(num_segments)
    parts = [rng.random(k) * s + 1e-12 for k, s in zip(lengths, spans)]
    weights = np.concatenate(parts) if parts else np.empty(0)
    offsets = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return weights, offsets


def reference_segments(weights, offsets, capacity, gamma):
    out = []
    for m in range(len(offsets) - 1):
        seg = weights[offsets[m] : offsets[m + 1]]
        if seg.size == 0:
            out.append(
                CappedProbabilities(
                    p=np.empty(0), capped=np.empty(0, dtype=bool), threshold=np.nan
                )
            )
        else:
            out.append(capped_probabilities(seg, capacity, gamma))
    return out


def assert_batch_matches_reference(weights, offsets, capacity, gamma):
    batch = capped_probabilities_batch(weights, offsets, capacity, gamma)
    refs = reference_segments(weights, offsets, capacity, gamma)
    assert batch.num_segments == len(refs)
    for m, ref in enumerate(refs):
        got = batch.segment(m)
        np.testing.assert_array_equal(got.p, ref.p, err_msg=f"segment {m} p")
        np.testing.assert_array_equal(got.capped, ref.capped, err_msg=f"segment {m} capped")
        if np.isnan(ref.threshold):
            assert np.isnan(got.threshold), f"segment {m} threshold"
        else:
            assert got.threshold == ref.threshold, f"segment {m} threshold"


class TestBatchEquivalence:
    @pytest.mark.parametrize("gamma", [0.01, 0.05, 0.3, 1.0])
    @pytest.mark.parametrize("capacity", [1, 3, 8])
    def test_random_ragged_instances(self, gamma, capacity):
        rng = np.random.default_rng(20260805)
        for _ in range(30):
            weights, offsets = random_instance(rng)
            assert_batch_matches_reference(weights, offsets, capacity, gamma)

    def test_extreme_weight_spreads_trigger_capping(self):
        # Spans up to 1e100 force the cap threshold walk deep into each
        # segment; the vectorized solve must match the reference walk exactly.
        rng = np.random.default_rng(7)
        any_capped = False
        for _ in range(40):
            weights, offsets = random_instance(rng, extreme=True)
            batch = capped_probabilities_batch(weights, offsets, 4, 0.05)
            any_capped = any_capped or bool(batch.capped.any())
            assert_batch_matches_reference(weights, offsets, 4, 0.05)
        assert any_capped, "extreme instances never exercised the cap path"

    def test_segments_not_exceeding_capacity_are_deterministic(self):
        # K <= c segments select everything with p = 1 (capped).
        weights = np.array([5.0, 1.0, 0.5, 2.0, 3.0])
        offsets = np.array([0, 2, 2, 5])  # lengths 2, 0, 3
        batch = capped_probabilities_batch(weights, offsets, 3, 0.1)
        np.testing.assert_array_equal(batch.segment(0).p, [1.0, 1.0])
        assert batch.segment(0).capped.all()
        assert batch.segment(1).p.size == 0
        np.testing.assert_array_equal(batch.segment(2).p, [1.0, 1.0, 1.0])
        assert_batch_matches_reference(weights, offsets, 3, 0.1)

    def test_all_segments_empty(self):
        offsets = np.zeros(5, dtype=np.int64)
        batch = capped_probabilities_batch(np.empty(0), offsets, 4, 0.1)
        assert batch.p.size == 0 and batch.capped.size == 0
        assert np.isnan(batch.thresholds).all()

    def test_single_segment_matches_scalar_api(self):
        rng = np.random.default_rng(3)
        w = rng.random(25) + 1e-6
        offsets = np.array([0, 25], dtype=np.int64)
        batch = capped_probabilities_batch(w, offsets, 6, 0.2)
        ref = capped_probabilities(w, 6, 0.2)
        np.testing.assert_array_equal(batch.p, ref.p)
        np.testing.assert_array_equal(batch.capped, ref.capped)

    def test_gamma_one_uniform(self):
        weights, offsets = random_instance(np.random.default_rng(11))
        assert_batch_matches_reference(weights, offsets, 5, 1.0)

    def test_marginals_sum_to_capacity_per_randomized_segment(self):
        rng = np.random.default_rng(5)
        weights, offsets = random_instance(rng, max_len=30)
        c = 4
        batch = capped_probabilities_batch(weights, offsets, c, 0.05)
        for m in range(batch.num_segments):
            p = batch.segment(m).p
            if p.size > c:
                assert p.sum() == pytest.approx(c, abs=1e-8)

    def test_invalid_offsets_rejected(self):
        w = np.ones(4)
        with pytest.raises(ValueError):
            capped_probabilities_batch(w, np.array([1, 4]), 2, 0.1)  # start != 0
        with pytest.raises(ValueError):
            capped_probabilities_batch(w, np.array([0, 3]), 2, 0.1)  # end != len
        with pytest.raises(ValueError):
            capped_probabilities_batch(w, np.array([0, 3, 2, 4]), 2, 0.1)  # decreasing
