"""Full-run equivalence of the batched and reference LFSC slot engines.

The batched flat edge-list engine (``LFSCConfig.engine="batched"``) must be
indistinguishable from the per-SCN reference loop: bit-identical assignments,
weight trajectories, multipliers, and statistics under the same seed, in both
assignment modes.  The batched kernels match the reference arithmetic to the
last ulp and consume the policy RNG in the same order, so the comparison is
``array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.baselines.priority import PriorityAwareLFSC
from repro.core.adaptive import AdaptiveLFSCPolicy
from repro.core.lfsc import LFSCPolicy
from repro.experiments.runner import ExperimentConfig, build_simulation


def run_both_engines(exp, mode, policy_factory=LFSCPolicy):
    out = {}
    for engine in ("reference", "batched"):
        sim = build_simulation(exp)
        cfg = exp.lfsc_config().with_overrides(assignment_mode=mode, engine=engine)
        policy = policy_factory(cfg)
        result = sim.run(policy, exp.horizon)
        out[engine] = (result, policy)
    return out["reference"], out["batched"]


def assert_identical(ref, batched):
    ref_result, ref_policy = ref
    batched_result, batched_policy = batched
    np.testing.assert_array_equal(ref_result.reward, batched_result.reward)
    np.testing.assert_array_equal(ref_result.expected_reward, batched_result.expected_reward)
    np.testing.assert_array_equal(ref_result.violation_qos, batched_result.violation_qos)
    np.testing.assert_array_equal(
        ref_result.violation_resource, batched_result.violation_resource
    )
    np.testing.assert_array_equal(ref_result.accepted, batched_result.accepted)
    np.testing.assert_array_equal(ref_policy.log_w, batched_policy.log_w)
    np.testing.assert_array_equal(ref_policy.multipliers.qos, batched_policy.multipliers.qos)
    np.testing.assert_array_equal(
        ref_policy.multipliers.resource, batched_policy.multipliers.resource
    )
    np.testing.assert_array_equal(ref_policy.stats.counts, batched_policy.stats.counts)
    np.testing.assert_array_equal(ref_policy.stats.mean_g, batched_policy.stats.mean_g)


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode", ["deterministic", "depround"])
    def test_tiny_run_identical(self, mode):
        assert_identical(*run_both_engines(ExperimentConfig.tiny(), mode))

    @pytest.mark.parametrize("mode", ["deterministic", "depround"])
    def test_small_run_identical(self, mode):
        assert_identical(*run_both_engines(ExperimentConfig.small(), mode))

    def test_seed_sweep_depround(self):
        # The depround sampler is the RNG-heaviest path; sweep seeds to catch
        # any stream divergence between the engines.
        base = ExperimentConfig.tiny()
        for seed in (1, 2, 3):
            exp = base.with_overrides(seed=seed)
            assert_identical(*run_both_engines(exp, "depround"))

    def test_adaptive_subclass_identical(self):
        assert_identical(
            *run_both_engines(ExperimentConfig.tiny(), "depround", AdaptiveLFSCPolicy)
        )

    def test_priority_subclass_identical(self):
        assert_identical(
            *run_both_engines(ExperimentConfig.tiny(), "depround", PriorityAwareLFSC)
        )

    def test_no_lagrangian_identical(self):
        exp = ExperimentConfig.tiny()
        out = {}
        for engine in ("reference", "batched"):
            sim = build_simulation(exp)
            cfg = exp.lfsc_config().with_overrides(engine=engine, use_lagrangian=False)
            policy = LFSCPolicy(cfg)
            out[engine] = (sim.run(policy, exp.horizon), policy)
        assert_identical(out["reference"], out["batched"])

    def test_engine_field_validated(self):
        with pytest.raises(ValueError, match="engine"):
            ExperimentConfig.tiny().lfsc_config().with_overrides(engine="turbo")

    def test_batched_cache_exposes_reference_views(self):
        # Diagnostics and subclasses read coverage/cubes/probs off the slot
        # cache; the batched cache must serve the same per-SCN views.
        exp = ExperimentConfig.tiny()
        sim = build_simulation(exp)
        policy = LFSCPolicy(exp.lfsc_config())
        rng = np.random.default_rng(0)
        policy.reset(sim.network, 1, rng)
        slot = sim.workload.slot(0, np.random.default_rng(1))
        policy.select(slot)
        cache = policy._cache
        assert len(cache.coverage) == sim.network.num_scns
        assert len(cache.cubes) == sim.network.num_scns
        assert len(cache.probs) == sim.network.num_scns
        for m in range(sim.network.num_scns):
            assert cache.coverage[m].shape == cache.cubes[m].shape
            assert cache.probs[m].p.shape == cache.coverage[m].shape
