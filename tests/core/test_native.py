"""The optional C kernels are bit-identical to their Python references.

``repro.core.native`` transliterates the DepRound walk, the Alg. 4
greedy pass, and the Alg. 3 statistics scatter into C for the windowed
engine's hot path.  The contract is
exact: given the same probabilities and pooled uniforms, the native walk
must select exactly the coordinates the Python walk selects (the C code
performs the identical IEEE-754 operations in the identical order), and the
native greedy pass must accept exactly the edges the Python pass accepts.
These property tests sweep randomized segments across both walk paths
(all-fractional and mixed-integral) and randomized edge lists; the
``REPRO_NATIVE=0`` kill-switch is checked end-to-end in a subprocess.

Everything here skips when the host has no C compiler — the pure-Python
fallback is what the rest of the suite exercises then.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import native
from repro.core.depround import _TOL, draw_count, walk_into
from repro.core.greedy import greedy_select_edges

needs_native = pytest.mark.skipif(
    not native.available(), reason="no C compiler / native kernels disabled"
)


def _segments(rng, num_segs, mixed):
    """Random per-segment probability lists; ``mixed`` adds 0/1 entries."""
    segs = []
    for _ in range(num_segs):
        n = int(rng.integers(0, 12))
        p = rng.random(n)
        if mixed and n:
            roll = rng.random(n)
            p[roll < 0.2] = 0.0
            p[roll > 0.8] = 1.0
        segs.append(p)
    return segs


def _pooled_layout(segs):
    lengths = np.array([len(s) for s in segs], dtype=np.int64)
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    p = np.concatenate([np.asarray(s, dtype=float) for s in segs]) if segs else np.empty(0)
    lo = np.array([s.min() if len(s) else 0.0 for s in segs])
    hi = np.array([s.max() if len(s) else 0.0 for s in segs])
    counts = np.array(
        [draw_count(list(s), float(l), float(h)) for s, l, h in zip(segs, lo, hi)],
        dtype=np.int64,
    )
    draw_start = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=draw_start[1:])
    return p, offsets, lo, hi, counts, draw_start


@needs_native
@pytest.mark.parametrize("mixed", [False, True])
@pytest.mark.parametrize("seed", range(20))
def test_walk_segments_matches_python_walk(seed, mixed):
    rng = np.random.default_rng(seed)
    segs = _segments(rng, num_segs=8, mixed=mixed)
    p, offsets, lo, hi, counts, draw_start = _pooled_layout(segs)
    E = int(offsets[-1])
    draws = rng.random(int(counts.sum()))

    expected = [False] * E
    for s, seg in enumerate(segs):
        if len(seg) == 0:
            continue
        seg_draws = draws[draw_start[s] : draw_start[s] + counts[s]].tolist()
        walk_into(list(seg), seg_draws, expected, int(offsets[s]), float(lo[s]), float(hi[s]))

    out = np.zeros(E, dtype=np.uint8)
    longest = int(max((len(s) for s in segs), default=0))
    ids_scratch = np.empty(max(longest, 1), dtype=np.int64)
    vals_scratch = np.empty(max(longest, 1))
    ran = native.walk_segments(
        np.ascontiguousarray(p), offsets, draws, draw_start, lo, hi,
        out, ids_scratch, vals_scratch, _TOL,
    )
    assert ran
    np.testing.assert_array_equal(out.astype(bool), np.asarray(expected))


@needs_native
@pytest.mark.parametrize("seed", range(10))
def test_greedy_pass_matches_python_pass(seed):
    rng = np.random.default_rng(100 + seed)
    num_scns, num_tasks, capacity = 6, 30, 3
    E = int(rng.integers(1, 80))
    edge_scn = rng.integers(0, num_scns, E).astype(np.int64)
    edge_task = rng.integers(0, num_tasks, E).astype(np.int64)
    edge_weight = rng.random(E) + 1e-3  # strictly positive, with possible ties

    # The public entry point prefers the native pass; force the Python pass
    # by disabling the loaded library for the reference run.
    native_asn = greedy_select_edges(
        edge_scn, edge_task, edge_weight, num_scns, capacity, num_tasks
    )
    lib, native._lib = native._lib, None
    try:
        python_asn = greedy_select_edges(
            edge_scn, edge_task, edge_weight, num_scns, capacity, num_tasks
        )
    finally:
        native._lib = lib
    np.testing.assert_array_equal(native_asn.scn, python_asn.scn)
    np.testing.assert_array_equal(native_asn.task, python_asn.task)


def test_kill_switch_runs_pure_python():
    """REPRO_NATIVE=0 must fall back silently and stay bit-identical."""
    code = (
        "import numpy as np\n"
        "from repro.core import native\n"
        "from repro.core.lfsc import LFSCPolicy\n"
        "from repro.experiments.runner import ExperimentConfig, build_simulation\n"
        "assert not native.available()\n"
        "cfg = ExperimentConfig.tiny(horizon=12)\n"
        "sim = build_simulation(cfg)\n"
        "res = sim.run(LFSCPolicy(cfg.lfsc_config()), cfg.horizon)\n"
        "print(repr(float(res.reward.sum())))\n"
    )
    env = dict(os.environ, REPRO_NATIVE="0")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), os.path.abspath("src")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr

    from repro.core.lfsc import LFSCPolicy
    from repro.experiments.runner import ExperimentConfig, build_simulation

    cfg = ExperimentConfig.tiny(horizon=12)
    sim = build_simulation(cfg)
    here = float(sim.run(LFSCPolicy(cfg.lfsc_config()), cfg.horizon).reward.sum())
    assert proc.stdout.strip() == repr(here)


@needs_native
@pytest.mark.parametrize("seed", range(40))
def test_scatter_update_matches_bincount(seed):
    """Alg. 3's scatter kernel is bit-identical to the bincount pair."""
    rng = np.random.default_rng(seed)
    E = int(rng.integers(0, 60))
    MF = int(rng.integers(1, 50))
    flat = rng.integers(0, MF, size=E).astype(np.int64)
    weights = rng.normal(size=E)
    sums = np.zeros(MF)
    counts = np.zeros(MF, dtype=np.int64)
    assert native.scatter_update(flat, weights, sums, counts)
    np.testing.assert_array_equal(
        sums, np.bincount(flat, weights=weights, minlength=MF)
    )
    np.testing.assert_array_equal(counts, np.bincount(flat, minlength=MF))


@needs_native
def test_scatter_update_accumulation_order_is_bitwise():
    """Cancellation-heavy weights into one cell: byte-equality proves the
    kernel adds in bincount's element order, not merely 'close enough'."""
    rng = np.random.default_rng(123)
    n = 2000
    flat = np.zeros(n, dtype=np.int64)
    weights = rng.normal(size=n) * np.power(
        10.0, rng.integers(-8, 8, size=n).astype(float)
    )
    sums = np.zeros(1)
    counts = np.zeros(1, dtype=np.int64)
    assert native.scatter_update(flat, weights, sums, counts)
    assert sums.tobytes() == np.bincount(flat, weights=weights, minlength=1).tobytes()
    assert counts[0] == n


def test_scatter_update_reports_unavailable():
    """With the kernel disabled the wrapper must refuse (False) untouched."""
    lib = native._lib
    native._lib = None
    try:
        sums = np.zeros(3)
        counts = np.zeros(3, dtype=np.int64)
        assert not native.scatter_update(
            np.zeros(0, dtype=np.int64), np.zeros(0), sums, counts
        )
        assert not sums.any() and not counts.any()
    finally:
        native._lib = lib


def test_available_is_bool():
    assert isinstance(native.available(), bool)
