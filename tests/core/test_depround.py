"""Tests for repro.core.depround — dependent rounding."""

import numpy as np
import pytest

from repro.core.depround import depround


class TestDepRound:
    def test_integral_input_unchanged(self, rng):
        p = np.array([1.0, 0.0, 1.0, 0.0])
        mask = depround(p, rng)
        np.testing.assert_array_equal(mask, [True, False, True, False])

    def test_cardinality_exact(self, rng):
        for _ in range(50):
            p = rng.random(10)
            p = p / p.sum() * 4.0  # sums to 4
            p = np.clip(p, 0, 1)
            total = p.sum()
            mask = depround(p.copy(), rng)
            assert mask.sum() in (int(np.floor(total)), int(np.ceil(total)))

    def test_cardinality_when_sum_integral(self, rng):
        p = np.full(8, 0.5)  # sums to 4 exactly
        for _ in range(20):
            assert depround(p, rng).sum() == 4

    def test_marginals_preserved(self, rng):
        p = np.array([0.9, 0.6, 0.5, 0.5, 0.3, 0.2])  # sums to 3
        counts = np.zeros(6)
        n = 20000
        for _ in range(n):
            counts += depround(p, rng)
        np.testing.assert_allclose(counts / n, p, atol=0.02)

    def test_input_not_mutated(self, rng):
        p = np.array([0.5, 0.5])
        orig = p.copy()
        depround(p, rng)
        np.testing.assert_array_equal(p, orig)

    def test_single_fractional_bernoulli(self, rng):
        hits = sum(depround(np.array([0.3]), rng)[0] for _ in range(10000))
        assert abs(hits / 10000 - 0.3) < 0.02

    def test_tiny_tolerance_clipping(self, rng):
        p = np.array([1.0 + 5e-10, -5e-10, 0.5, 0.5])
        mask = depround(p, rng)
        assert mask[0] and not mask[1]

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            depround(np.array([1.5]), rng)
        with pytest.raises(ValueError):
            depround(np.array([-0.5]), rng)

    def test_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            depround(np.ones((2, 2)) * 0.5, rng)

    def test_empty(self, rng):
        assert depround(np.empty(0), rng).size == 0
