"""Tests for the reference single-agent Exp3.M."""

import numpy as np
import pytest

from repro.core.exp3m import Exp3M


def run_stochastic(means, plays, T, seed=0, **kw):
    """Play a stochastic Bernoulli bandit; return (agent, realized rewards)."""
    rng = np.random.default_rng(seed)
    agent = Exp3M(num_arms=len(means), plays=plays, horizon=T, **kw)
    means = np.asarray(means)
    total = 0.0
    for _ in range(T):
        chosen = agent.select(rng)
        rewards = (rng.random(len(chosen)) < means[chosen]).astype(float)
        agent.update(chosen, rewards)
        total += rewards.sum()
    return agent, total


class TestMechanics:
    def test_select_size(self):
        rng = np.random.default_rng(0)
        agent = Exp3M(num_arms=10, plays=3)
        assert agent.select(rng).shape == (3,)

    def test_probabilities_sum_to_plays(self):
        agent = Exp3M(num_arms=8, plays=2)
        assert agent.probabilities().sum() == pytest.approx(2.0)

    def test_update_requires_select(self):
        agent = Exp3M(num_arms=4, plays=1)
        with pytest.raises(ValueError):
            agent.update(np.array([0]), np.array([1.0]))

    def test_theorem_gamma_derived(self):
        agent = Exp3M(num_arms=100, plays=20, horizon=10_000)
        assert 0 < agent.gamma < 0.1
        assert agent.eta == pytest.approx(agent.gamma / 100)

    def test_plays_must_be_smaller(self):
        with pytest.raises(ValueError):
            Exp3M(num_arms=3, plays=3)

    def test_counter_advances(self):
        rng = np.random.default_rng(0)
        agent = Exp3M(num_arms=5, plays=2)
        chosen = agent.select(rng)
        agent.update(chosen, np.zeros(len(chosen)))
        assert agent.t == 1

    def test_log_weights_bounded(self):
        agent, _ = run_stochastic([0.9] * 2 + [0.1] * 8, plays=2, T=2000, gamma=0.1, eta=0.05)
        assert np.isfinite(agent.log_w).all()
        assert agent.log_w.max() <= 50.0 + 1e-9


class TestLearning:
    def test_concentrates_on_best_arms(self):
        means = [0.9, 0.85, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]
        agent, _ = run_stochastic(means, plays=2, T=3000, gamma=0.1, eta=0.05)
        p = agent.probabilities()
        assert p[0] + p[1] > 1.5  # most of the budget on the two good arms

    def test_beats_uniform_play(self):
        means = np.array([0.9, 0.8, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2])
        _, total = run_stochastic(means, plays=3, T=2000, gamma=0.1, eta=0.05)
        uniform_expected = 2000 * 3 * means.mean()
        assert total > 1.15 * uniform_expected

    def test_near_oracle_on_easy_instance(self):
        means = np.array([0.95, 0.9, 0.05, 0.05, 0.05])
        _, total = run_stochastic(means, plays=2, T=3000, gamma=0.05, eta=0.05)
        oracle = 3000 * (0.95 + 0.9)
        assert total > 0.8 * oracle

    def test_two_seeds_similar_performance(self):
        means = [0.9, 0.1, 0.1, 0.1]
        _, a = run_stochastic(means, 1, 1500, seed=1, gamma=0.1, eta=0.05)
        _, b = run_stochastic(means, 1, 1500, seed=2, gamma=0.1, eta=0.05)
        assert abs(a - b) < 0.25 * max(a, b)
