"""Run the full paper-scale evaluation (§5) and save the results.

This regenerates every Fig. 2 series at the published scale — M=30 SCNs,
c=20, α=15, β=27, |D_{m,t}| ∈ [35,100], T=10,000 — for all five algorithms,
then prints the summary tables and stores the raw series under
``results/paper_scale``.  Expect minutes of wall-clock (the Oracle solves an
LP every slot); pass ``--horizon N`` / ``--workers W`` to scale down.

Usage:
    python examples/paper_scale_run.py [--horizon 10000] [--workers 0]
"""

from __future__ import annotations

import argparse
import time

from repro import api
from repro.experiments.figures import (
    fig2_violations,
    fig2a_cumulative_reward,
    performance_ratio_table,
)
from repro.experiments.io import save_results
from repro.experiments.runner import DEFAULT_POLICIES
from repro.metrics.violations import per_slot_violation_rate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=10_000)
    parser.add_argument("--workers", type=int, default=0, help="0 = all CPUs")
    parser.add_argument("--out", default="results/paper_scale")
    args = parser.parse_args()

    print(f"Running {len(DEFAULT_POLICIES)} policies at paper scale, T={args.horizon} ...")
    t0 = time.time()
    run = api.run(scale="paper", horizon=args.horizon, workers=args.workers)
    cfg, results = run.config, run.results
    print(f"done in {time.time() - t0:.0f}s\n")

    print("[Fig 2a] cumulative compound reward")
    print(fig2a_cumulative_reward(cfg, results=results).table(), "\n")

    print("[Fig 2 violations] totals and early-violation ratios")
    print(fig2_violations(cfg, results=results).table(), "\n")

    print("[E7] performance ratio")
    print(performance_ratio_table(cfg, results=results).table(), "\n")

    print("[E3] per-slot violation rate, first vs last quarter")
    for name, res in results.items():
        rate = per_slot_violation_rate(res, window=200)
        q = len(rate) // 4
        print(f"  {name:8s} {rate[:q].mean():8.2f} -> {rate[-q:].mean():8.2f}")

    npz, js = save_results(results, args.out, config=cfg)
    print(f"\nsaved: {npz} and {js} (+ manifest sidecar)")


if __name__ == "__main__":
    main()
