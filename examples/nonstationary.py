"""Non-stationary rewards: drifting means and regime switches (paper §3.2).

The paper only assumes V and Q stationary; the reward process U "is not
necessarily stationary".  This example runs LFSC in the two non-stationary
environments the library ships:

- :class:`DriftingTruth` — per-cube mean rewards follow a bounded random
  walk (slow concept drift, e.g. demand patterns shifting through the day);
- :class:`RegimeSwitchTruth` — rewards flip between two regimes (abrupt
  change, e.g. a flash crowd arriving).

The exponential-weights core keeps adapting because recent feedback always
moves the weights; compare the reward LFSC retains with Random's.

Usage:
    python examples/nonstationary.py
"""

from __future__ import annotations

from repro import ExperimentConfig, NetworkConfig, Simulation, comparison_rows, format_table
from repro.env import DriftingTruth, PiecewiseConstantTruth, RegimeSwitchTruth
from repro.experiments.runner import build_truth, build_workload, make_policy


def run_environment(label: str, truth, cfg) -> None:
    sim = Simulation(
        network=cfg.network(), workload=build_workload(cfg), truth=truth, seed=3
    )
    results = {}
    for name in ("Oracle", "LFSC", "Random"):
        results[name] = sim.run(make_policy(name, cfg, truth), cfg.horizon)
    print(f"\n=== {label} ===")
    print(format_table(comparison_rows(results)))


def main() -> None:
    cfg = ExperimentConfig.small(horizon=800)

    stationary = build_truth(cfg)
    run_environment("stationary (paper §5 setting)", stationary, cfg)

    def base():
        return PiecewiseConstantTruth(
            num_scns=cfg.num_scns,
            dims=cfg.dims,
            cells_per_dim=cfg.cells_per_dim,
            seed=cfg.truth_seed,
        )

    run_environment(
        "drifting rewards (random walk, sigma=0.02/slot)",
        DriftingTruth(base=base(), drift=0.02),
        cfg,
    )

    run_environment(
        "regime switching (p=0.005/slot)",
        RegimeSwitchTruth(
            regime_a=base(),
            regime_b=PiecewiseConstantTruth(
                num_scns=cfg.num_scns,
                dims=cfg.dims,
                cells_per_dim=cfg.cells_per_dim,
                seed=cfg.truth_seed + 1,
            ),
            switch_prob=0.005,
        ),
        cfg,
    )

    print(
        "\nNote: the Oracle tracks the *current* regime's means every slot, so"
        "\nits lead over LFSC widens under non-stationarity — the price of"
        "\nlearning from history the environment keeps invalidating."
    )


if __name__ == "__main__":
    main()
