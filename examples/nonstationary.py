"""Non-stationary rewards: drifting means and regime switches (paper §3.2).

The paper only assumes V and Q stationary; the reward process U "is not
necessarily stationary".  This script runs LFSC in the two non-stationary
scenario families the registry ships:

- ``nonstationary_drift`` — per-cube mean rewards follow a bounded random
  walk (slow concept drift, e.g. demand patterns shifting through the day);
- ``nonstationary_regime`` — rewards flip between two regimes (abrupt
  change, e.g. a flash crowd arriving).

The exponential-weights core keeps adapting because recent feedback always
moves the weights; compare the reward LFSC retains with Random's.

The environment assembly lives in the scenario registry (DESIGN.md §11);
this script is a thin wrapper over the committed scenario files:

    python examples/nonstationary.py
    python -m repro run --scenario examples/scenarios/nonstationary_drift.toml
"""

from __future__ import annotations

from pathlib import Path

from repro import api

SCENARIO_DIR = Path(__file__).parent / "scenarios"
POLICIES = ("Oracle", "LFSC", "Random")


def main() -> None:
    # The stationary §5 setting at the same scale, for reference.
    out = api.run(policies=POLICIES, horizon=800, seed=3)
    print("=== stationary (paper §5 setting) ===")
    print(out.table())

    for label, name in (
        ("drifting rewards (random walk, sigma=0.02/slot)", "nonstationary_drift"),
        ("regime switching (p=0.005/slot)", "nonstationary_regime"),
    ):
        out = api.run(scenario=SCENARIO_DIR / f"{name}.toml", policies=POLICIES)
        print(f"\n=== {label} ===")
        print(out.table())

    print(
        "\nNote: the Oracle tracks the *current* regime's means every slot, so"
        "\nits lead over LFSC widens under non-stationarity — the price of"
        "\nlearning from history the environment keeps invalidating."
    )


if __name__ == "__main__":
    main()
