"""Robustness scenario: geometric coverage, WD mobility, mmWave blockage.

The paper's evaluation samples coverage sets directly; this example instead
instantiates the physical picture of its Fig. 1:

- 9 SCNs on a grid over a 6x6 km service area (paper §1: small cells cover
  up to ~2 km), 160 wireless devices moving by a random-waypoint process;
- a Gilbert-Elliott blockage channel on top of the Bernoulli completion
  likelihood — when a SCN's mmWave beam is blocked (a bus parks in front of
  the street-light node) every task it accepted that slot is interrupted.

Temporally correlated failures are exactly the "uncertainty in the task
offloading process" §1 motivates V with; LFSC keeps learning because its
importance-weighted estimates average over blocked and clear slots.

Usage:
    python examples/mobility_blockage.py
"""

from __future__ import annotations

from repro import ExperimentConfig, comparison_rows, format_table
from repro.env import (
    GeometricCoverage,
    MarkovBlockage,
    NetworkConfig,
    Simulation,
    SyntheticWorkload,
    TaskFeatureModel,
)
from repro.experiments.runner import build_truth, make_policy


def main() -> None:
    cfg = ExperimentConfig.small(num_scns=9, horizon=800)
    network = NetworkConfig(num_scns=9, capacity=6, alpha=4.5, beta=8.1)
    workload = SyntheticWorkload(
        features=TaskFeatureModel(),
        coverage_model=GeometricCoverage(
            num_scns=9, num_wds=160, area_km=6.0, radius_km=2.0, speed_km=0.3
        ),
    )
    channel = MarkovBlockage(num_scns=9, p_block=0.08, p_recover=0.4)
    print(
        "9 SCNs on a 6x6 km grid, 160 mobile WDs, blockage: "
        f"{channel.stationary_block_probability():.0%} of slots blocked per SCN"
    )

    truth = build_truth(cfg)
    sim = Simulation(
        network=network, workload=workload, truth=truth, channel=channel, seed=7
    )

    results = {}
    for name in ("Oracle", "LFSC", "vUCB", "Random"):
        results[name] = sim.run(make_policy(name, cfg, truth), cfg.horizon)

    print("\nSummary under mobility + blockage:")
    print(format_table(comparison_rows(results)))

    # The Oracle knows the long-run truth but not the instantaneous blockage
    # state, so even it loses reward to blocked slots — the gap between its
    # expected and realized reward measures the channel's toll.
    oracle = results["Oracle"]
    toll = 1.0 - oracle.total_reward / oracle.expected_reward.sum()
    print(f"\nBlockage toll on the Oracle (expected vs realized reward): {toll:.1%}")


if __name__ == "__main__":
    main()
