"""Robustness scenario: geometric coverage, WD mobility, mmWave blockage.

The paper's evaluation samples coverage sets directly; this scenario instead
instantiates the physical picture of its Fig. 1 — 9 SCNs on a grid over a
6x6 km service area, 160 wireless devices moving by a random-waypoint
process, and a Gilbert-Elliott blockage channel on top of the Bernoulli
completion likelihood.  Temporally correlated failures are exactly the
"uncertainty in the task offloading process" §1 motivates V with; LFSC
keeps learning because its importance-weighted estimates average over
blocked and clear slots.

The environment assembly lives in the scenario registry (DESIGN.md §11);
this script is a thin wrapper over the committed scenario file:

    python examples/mobility_blockage.py
    python -m repro run --scenario examples/scenarios/mobility_blockage.toml
"""

from __future__ import annotations

from pathlib import Path

from repro import api

SCENARIO = Path(__file__).parent / "scenarios" / "mobility_blockage.toml"


def main() -> None:
    out = api.run(scenario=SCENARIO, policies=("Oracle", "LFSC", "vUCB", "Random"))
    print("9 SCNs on a 6x6 km grid, 160 mobile WDs, Gilbert-Elliott blockage")
    print("\nSummary under mobility + blockage:")
    print(out.table())

    # The Oracle knows the long-run truth but not the instantaneous blockage
    # state, so even it loses reward to blocked slots — the gap between its
    # expected and realized reward measures the channel's toll.
    oracle = out["Oracle"]
    toll = 1.0 - oracle.total_reward / oracle.expected_reward.sum()
    print(f"\nBlockage toll on the Oracle (expected vs realized reward): {toll:.1%}")


if __name__ == "__main__":
    main()
