"""Inspect LFSC's learning dynamics: weights, duals, and regret curves.

Runs LFSC (and the Oracle for reference) on the small instance, then uses
:mod:`repro.analysis` to answer the questions you would ask of any bandit
deployment:

- How concentrated are the hypercube weights per SCN (entropy, top-k mass)?
- Have the Lagrange multipliers settled, and at what levels?
- Does the average regret R(t)/t actually decrease (Theorem 1)?

ASCII charts render the cumulative-reward and violation curves inline.

Usage:
    python examples/convergence_diagnostics.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    ascii_plot,
    multiplier_summary,
    sparkline,
    weight_concentration,
    weight_entropy,
)
from repro.experiments.runner import ExperimentConfig, build_simulation, make_policy
from repro.metrics.regret import regret_series
from repro.metrics.violations import violation_series


def main() -> None:
    cfg = ExperimentConfig.small(horizon=1200)
    sim = build_simulation(cfg)

    lfsc = make_policy("LFSC", cfg, sim.truth)
    res_lfsc = sim.run(lfsc, cfg.horizon)
    res_oracle = sim.run(make_policy("Oracle", cfg, sim.truth), cfg.horizon)

    print("=== weight diagnostics (per SCN) ===")
    entropy = weight_entropy(lfsc)
    top3 = weight_concentration(lfsc, top_k=3)
    print(f"normalized entropy : {np.round(entropy, 2)}")
    print(f"top-3 cube mass    : {np.round(top3, 2)}")
    print("(entropy 1.0 = still uniform, 0.0 = locked on one cube)")

    print("\n=== Lagrange multipliers ===")
    for key, value in multiplier_summary(lfsc).items():
        print(f"  {key:28s} {value:8.3f}")
    qos_hist = lfsc.multiplier_history_qos.mean(axis=1)
    print(f"  λ_qos over time      {sparkline(qos_hist)}")
    res_hist = lfsc.multiplier_history_resource.mean(axis=1)
    print(f"  λ_resource over time {sparkline(res_hist)}")

    print("\n=== regret ===")
    regret = regret_series(res_lfsc, res_oracle)
    avg = regret / np.arange(1, len(regret) + 1)
    print(f"  R(t)/t               {sparkline(avg)}")
    print(f"  R(T)/T = {avg[-1]:.3f} (decreasing ⇒ converging to the Oracle)")

    print()
    print(
        ascii_plot(
            {
                "Oracle reward": res_oracle.cumulative_reward,
                "LFSC reward": res_lfsc.cumulative_reward,
            },
            title="cumulative compound reward",
        )
    )
    print()
    print(
        ascii_plot(
            {
                "Oracle violations": violation_series(res_oracle),
                "LFSC violations": violation_series(res_lfsc),
            },
            title="cumulative violations (V1 + V2)",
        )
    )


if __name__ == "__main__":
    main()
