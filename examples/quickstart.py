"""Quickstart: run LFSC against the baselines on a small instance.

Builds the paper's simulation environment at a laptop-friendly scale via
the stable :mod:`repro.api` facade, runs Oracle / LFSC / vUCB / FML /
Random on the same workload, and prints the summary table (total reward,
violations, performance ratio).

Usage:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import api
from repro.metrics import early_violation_ratio


def main() -> None:
    # A scaled-down instance preserving the paper's constraint ratios
    # (alpha/c = 0.75, beta/(c·E[q]) = 0.9); pass scale="paper" for the
    # published scale.
    result = api.run(scale="small", horizon=1000, workers=0)
    cfg = result.config
    print(
        f"Simulated {cfg.num_scns} SCNs, capacity c={cfg.capacity}, "
        f"alpha={cfg.alpha}, beta={cfg.beta}, T={cfg.horizon} slots."
    )

    print("\nSummary (paper Fig. 2 headline numbers):")
    print(result.table())

    print("\nEarly-stage violation ratios (paper §5: LFSC ≈ 30%/32%/20%):")
    for other in ("vUCB", "FML", "Random"):
        ratio = early_violation_ratio(result["LFSC"], result[other])
        print(f"  LFSC / {other:7s} = {ratio:.2f}")

    lfsc, oracle = result["LFSC"], result["Oracle"]
    print(
        f"\nLFSC cumulative reward reaches "
        f"{lfsc.total_reward / oracle.total_reward:.1%} of the Oracle."
    )


if __name__ == "__main__":
    main()
