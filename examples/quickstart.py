"""Quickstart: run LFSC against the baselines on a small instance.

Builds the paper's simulation environment at a laptop-friendly scale,
runs Oracle / LFSC / vUCB / FML / Random on the same workload, and prints
the summary table (total reward, violations, performance ratio).

Usage:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    comparison_rows,
    format_table,
    run_experiment,
)
from repro.metrics import early_violation_ratio


def main() -> None:
    # A scaled-down instance preserving the paper's constraint ratios
    # (alpha/c = 0.75, beta/(c·E[q]) = 0.9); see ExperimentConfig.paper()
    # for the published scale.
    cfg = ExperimentConfig.small(horizon=1000)
    print(
        f"Simulating {cfg.num_scns} SCNs, capacity c={cfg.capacity}, "
        f"alpha={cfg.alpha}, beta={cfg.beta}, T={cfg.horizon} slots ..."
    )
    results = run_experiment(cfg, DEFAULT_POLICIES, workers=0)

    print("\nSummary (paper Fig. 2 headline numbers):")
    print(format_table(comparison_rows(results)))

    print("\nEarly-stage violation ratios (paper §5: LFSC ≈ 30%/32%/20%):")
    for other in ("vUCB", "FML", "Random"):
        ratio = early_violation_ratio(results["LFSC"], results[other])
        print(f"  LFSC / {other:7s} = {ratio:.2f}")

    lfsc, oracle = results["LFSC"], results["Oracle"]
    print(
        f"\nLFSC cumulative reward reaches "
        f"{lfsc.total_reward / oracle.total_reward:.1%} of the Oracle."
    )


if __name__ == "__main__":
    main()
