"""Extending the framework: plug in your own offloading policy.

Implements a deliberately simple "sticky greedy" policy against the public
:class:`repro.OffloadingPolicy` API — it remembers the empirically best
hypercube per SCN and always requests tasks from it first — and benchmarks
it against LFSC and Random on the same workload.

The exercise shows the full policy contract:
- ``reset(network, horizon, rng)`` — allocate state;
- ``select(slot) -> Assignment`` — honour capacity (1a) and uniqueness (1b),
  easiest via :func:`repro.core.greedy.greedy_select`;
- ``update(slot, feedback)`` — consume bandit feedback.

Usage:
    python examples/custom_policy.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ContextPartition,
    ExperimentConfig,
    OffloadingPolicy,
    comparison_rows,
    format_table,
)
from repro.core.estimators import CubeStatistics
from repro.core.greedy import greedy_select
from repro.experiments.runner import build_simulation, make_policy


class StickyGreedyPolicy(OffloadingPolicy):
    """Exploit the best-known hypercube; explore only via initial coverage.

    A purposely naive learner: each SCN scores a task by the sample-mean
    compound reward of its hypercube, with unvisited cubes scored by an
    optimistic constant.  No exploration schedule, no constraint awareness —
    a useful foil for LFSC.
    """

    name = "sticky-greedy"

    def __init__(self, partition: ContextPartition | None = None, optimism: float = 1.0):
        super().__init__()
        self.partition = partition or ContextPartition()
        self.optimism = optimism
        self.stats: CubeStatistics | None = None
        self._cubes: list[np.ndarray] | None = None

    def reset(self, network, horizon, rng):
        super().reset(network, horizon, rng)
        self.stats = CubeStatistics(network.num_scns, self.partition.num_cubes)

    def select(self, slot):
        network = self._require_reset()
        scores = self.stats.mean_g.copy()
        scores[self.stats.counts == 0] = self.optimism
        self._cubes = []
        weights = []
        for m, cov in enumerate(slot.coverage):
            cov = np.asarray(cov, dtype=np.int64)
            cubes = self.partition.assign(slot.tasks.contexts[cov]) if cov.size else cov
            self._cubes.append(cubes)
            weights.append(scores[m, cubes] if cov.size else np.empty(0))
        return greedy_select(slot.coverage, weights, network.capacity, len(slot.tasks))

    def _update(self, slot, feedback):
        asn = feedback.assignment
        if len(asn) == 0:
            return
        cubes = np.empty(len(asn), dtype=np.int64)
        for m in np.unique(asn.scn):
            rows = np.flatnonzero(asn.scn == m)
            cov = np.asarray(slot.coverage[m], dtype=np.int64)
            sorter = np.argsort(cov)
            pos = sorter[np.searchsorted(cov, asn.task[rows], sorter=sorter)]
            cubes[rows] = self._cubes[m][pos]
        self.stats.observe(asn.scn, cubes, feedback.g, feedback.v, feedback.q)


def main() -> None:
    cfg = ExperimentConfig.small(horizon=800)
    sim = build_simulation(cfg)

    results = {}
    for name in ("Oracle", "LFSC", "Random"):
        results[name] = sim.run(make_policy(name, cfg, sim.truth), cfg.horizon)
    results["sticky-greedy"] = sim.run(
        StickyGreedyPolicy(cfg.partition), cfg.horizon
    )

    print(format_table(comparison_rows(results)))
    print(
        "\nsticky-greedy earns decent reward but, like vUCB/FML, ignores the"
        "\nconstraints — compare its violations with LFSC's."
    )


if __name__ == "__main__":
    main()
