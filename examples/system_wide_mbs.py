"""System-wide view: SCN offloading plus the MBS fallback (paper §3.3).

The paper's discussion notes that tasks not selected by any SCN "can be
offloaded and processed by MBS" — at worse latency, hence worth less.  This
example runs LFSC and Random, routes every covered-but-unselected task
through the :class:`repro.env.MBSFallback`, and reports the *system-wide*
served reward: SCN compound reward + discounted MBS reward.

A good SCN-side policy matters twice: it earns more at the edge AND leaves
the MBS a lighter, lower-value residue.

Usage:
    python examples/system_wide_mbs.py
"""

from __future__ import annotations

import numpy as np

from repro import ExperimentConfig, format_table
from repro.env import MBSFallback, Simulation
from repro.experiments.runner import build_truth, build_workload, make_policy
from repro.utils.rng import RngFactory


def run_with_mbs(cfg: ExperimentConfig, policy_name: str) -> dict[str, float]:
    truth = build_truth(cfg)
    workload = build_workload(cfg)
    network = cfg.network()
    policy = make_policy(policy_name, cfg, truth)
    mbs = MBSFallback(capacity=40, reward_factor=0.4, completion_prob=0.9)

    # Re-implement the slot loop with the fallback layer spliced in; the
    # SCN-side mechanics are identical to Simulation.run.
    rngs = RngFactory(cfg.seed)
    workload_rng = rngs.get("workload")
    realize_rng = rngs.get("realizations")
    mbs_rng = rngs.get("mbs")
    policy.reset(network, cfg.horizon, rngs.get(f"policy.{policy_name}"))
    workload.reset()

    scn_reward = 0.0
    mbs_reward = 0.0
    mbs_served = 0
    for t in range(cfg.horizon):
        slot = workload.slot(t, workload_rng)
        assignment = policy.select(slot)
        if len(assignment):
            ctx = slot.tasks.contexts[assignment.task]
            u, v, q = truth.realize(t, ctx, assignment.scn, realize_rng)
            g = u * v / q
        else:
            u = v = q = g = np.empty(0)
        from repro.env.simulator import SlotFeedback

        policy.update(slot, SlotFeedback(assignment, u, v, q, g))
        scn_reward += float(g.sum())

        result = mbs.serve(slot, assignment, truth, mbs_rng)
        mbs_reward += result.reward
        mbs_served += result.num_served

    return {
        "policy": policy_name,
        "scn_reward": scn_reward,
        "mbs_reward": mbs_reward,
        "system_reward": scn_reward + mbs_reward,
        "mbs_tasks_per_slot": mbs_served / cfg.horizon,
    }


def main() -> None:
    cfg = ExperimentConfig.small(horizon=600)
    rows = [run_with_mbs(cfg, name) for name in ("LFSC", "Random")]
    print("System-wide served reward (SCNs + discounted MBS fallback):\n")
    print(format_table(rows))
    print(
        "\nThe MBS absorbs what the SCNs decline; LFSC leaves it fewer,"
        "\nlower-value leftovers while earning more at the edge."
    )


if __name__ == "__main__":
    main()
