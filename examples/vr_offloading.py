"""Domain scenario: VR/AR task offloading in a dense small-cell hotspot.

The paper's introduction motivates small-cell edge computing with emerging
latency-critical services — virtual reality, security surveillance,
automatic driving.  This example models a VR-heavy hotspot:

- tasks are GPU-dominated (rendering offload) with large inputs (pose +
  scene deltas up to 20 Mbit) and small outputs (encoded frames);
- the QoS threshold α is raised to 0.8·c — a VR session that misses its
  frame budget is worthless, so the operator demands more completions;
- link reliability is high (V ~ U[0.5, 1]): hotspot SCNs are close by.

We compare LFSC against vUCB and Random and show LFSC sacrifices a little
raw reward to honour the tighter QoS constraint.

Usage:
    python examples/vr_offloading.py
"""

from __future__ import annotations

from repro import ExperimentConfig, comparison_rows, format_table, run_experiment
from repro.metrics import per_slot_violation_rate


def main() -> None:
    cfg = ExperimentConfig.small(horizon=1200).with_overrides(
        alpha=0.8 * 6,  # tighter QoS: 80% of the capacity must complete
        v_range=(0.5, 1.0),  # reliable hotspot links
        u_range=(0.3, 1.0),  # VR frames are always worth something
    )
    print(
        "VR hotspot: alpha raised to "
        f"{cfg.alpha:.1f}/{cfg.capacity} accepted tasks, links V~U{cfg.v_range}"
    )
    results = run_experiment(cfg, ("Oracle", "LFSC", "vUCB", "Random"), workers=0)

    print("\nSummary:")
    print(format_table(comparison_rows(results)))

    print("\nQoS violation rate (per-slot moving average), first -> last quarter:")
    for name, res in results.items():
        rate = per_slot_violation_rate(res, window=100, kind="qos")
        q = len(rate) // 4
        print(f"  {name:8s} {rate[:q].mean():6.2f} -> {rate[-q:].mean():6.2f}")

    lfsc, vucb = results["LFSC"], results["vUCB"]
    print(
        f"\nLFSC finishes with {lfsc.violation_qos.sum() / vucb.violation_qos.sum():.0%} "
        "of vUCB's QoS violations."
    )


if __name__ == "__main__":
    main()
