"""Domain scenario: VR/AR task offloading in a dense small-cell hotspot.

The paper's introduction motivates small-cell edge computing with emerging
latency-critical services — virtual reality, security surveillance,
automatic driving.  The ``vr`` scenario models a VR-heavy hotspot: the QoS
threshold α is raised to 0.8·c (a VR session that misses its frame budget
is worthless), links are reliable (V ~ U[0.5, 1]) and frames always worth
something (U ~ U[0.3, 1]).  LFSC sacrifices a little raw reward to honour
the tighter QoS constraint.

The config assembly lives in the scenario registry (DESIGN.md §11); this
script is a thin wrapper over the committed scenario file:

    python examples/vr_offloading.py
    python -m repro run --scenario examples/scenarios/vr_offloading.toml
"""

from __future__ import annotations

from pathlib import Path

from repro import api
from repro.metrics import per_slot_violation_rate

SCENARIO = Path(__file__).parent / "scenarios" / "vr_offloading.toml"


def main() -> None:
    out = api.run(scenario=SCENARIO, policies=("Oracle", "LFSC", "vUCB", "Random"))
    cfg = out.config
    print(
        "VR hotspot: alpha raised to "
        f"{cfg.alpha:.1f}/{cfg.capacity} accepted tasks, links V~U{cfg.v_range}"
    )

    print("\nSummary:")
    print(out.table())

    print("\nQoS violation rate (per-slot moving average), first -> last quarter:")
    for name in out.policies:
        rate = per_slot_violation_rate(out[name], window=100, kind="qos")
        q = len(rate) // 4
        print(f"  {name:8s} {rate[:q].mean():6.2f} -> {rate[-q:].mean():6.2f}")

    lfsc, vucb = out["LFSC"], out["vUCB"]
    print(
        f"\nLFSC finishes with {lfsc.violation_qos.sum() / vucb.violation_qos.sum():.0%} "
        "of vUCB's QoS violations."
    )


if __name__ == "__main__":
    main()
