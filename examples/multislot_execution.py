"""Multi-slot task execution with the priority bonus (paper §3.3, §6).

Tasks need 1-3 completed slots to finish; unfinished tasks resubmit, and
their reward is paid only on full execution.  We compare plain LFSC against
:class:`PriorityAwareLFSC` — the paper's proposed "extra reward for
processed tasks" — on the deferred-payout metrics: fully finished tasks,
abandonments, and the paid (i.e. actually earned) reward.

Usage:
    python examples/multislot_execution.py
"""

from __future__ import annotations

import numpy as np

from repro import ExperimentConfig, format_table
from repro.baselines.priority import PriorityAwareLFSC
from repro.core.lfsc import LFSCPolicy
from repro.env.contexts import TaskFeatureModel
from repro.env.geometry import CoverageSampler
from repro.env.multislot import MultiSlotTracker, MultiSlotWorkload
from repro.env.simulator import SlotFeedback
from repro.experiments.runner import build_truth
from repro.utils.rng import RngFactory


def run(policy, cfg: ExperimentConfig, label: str) -> dict:
    truth = build_truth(cfg)
    workload = MultiSlotWorkload(
        features=TaskFeatureModel(),
        coverage_model=CoverageSampler(
            num_scns=cfg.num_scns, k_min=cfg.k_min, k_max=cfg.k_max
        ),
        max_duration=3,
        max_backlog=150,
    )
    tracker = MultiSlotTracker(patience=8)
    network = cfg.network()

    rngs = RngFactory(cfg.seed)
    workload_rng = rngs.get("workload")
    realize_rng = rngs.get("realizations")
    policy.reset(network, cfg.horizon, rngs.get(f"policy.{label}"))
    workload.reset()

    for t in range(cfg.horizon):
        slot = workload.slot(t, workload_rng)
        assignment = policy.select(slot)
        if len(assignment):
            ctx = slot.tasks.contexts[assignment.task]
            u, v, q = truth.realize(t, ctx, assignment.scn, realize_rng)
            g = u * v / q
        else:
            u = v = q = g = np.empty(0)
        feedback = SlotFeedback(assignment, u, v, q, g)
        tracker.record(workload, slot, feedback)
        policy.update(slot, feedback)

    return {
        "policy": label,
        "finished_tasks": tracker.finished,
        "abandoned_tasks": tracker.abandoned,
        "completion_rate": tracker.completion_rate(),
        "paid_reward": tracker.paid_reward,
    }


def main() -> None:
    cfg = ExperimentConfig.small(horizon=500)
    lfsc_cfg = cfg.lfsc_config()
    rows = [
        run(LFSCPolicy(lfsc_cfg), cfg, "LFSC"),
        run(PriorityAwareLFSC(lfsc_cfg, priority_bonus=2.0), cfg, "LFSC-priority"),
    ]
    print("Multi-slot execution: reward paid only on full completion\n")
    print(format_table(rows))
    base, prio = rows
    print(
        f"\nThe priority bonus finishes {prio['finished_tasks'] - base['finished_tasks']:+d} "
        f"tasks and changes paid reward by "
        f"{(prio['paid_reward'] / base['paid_reward'] - 1):+.1%} vs plain LFSC."
    )


if __name__ == "__main__":
    main()
